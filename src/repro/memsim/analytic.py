"""Closed-form performance prediction: the Che-approximation fast path.

Simulation answers "what would this placement measure?" by realising
every request (noise repeats included).  This module answers the same
question analytically, from *per-key* aggregates:

- the runtime/latency model is the simulator's own cost formula
  ``t = cpu + passes * (latency + bytes / bandwidth)`` evaluated once
  per key instead of once per request — exact for the no-LLC simulator
  up to measurement noise, whose multiplicative factors average to 1;
- the LLC is predicted with Che-style characteristic-time reasoning
  [Che et al. 2002]: an LRU behaves as if every entry were evicted a
  fixed time ``T`` after its last use, where ``T`` is solved from the
  capacity constraint.  Two estimators implement it:

  * :func:`che_hit_rates` — the classic form over the key-popularity
    CDF: with per-key probabilities ``p_k`` and sizes ``s_k``, a key
    hits with probability ``h_k = 1 - exp(-p_k * T)`` where ``T``
    solves ``sum_k s_k (1 - exp(-p_k T)) = C``.  Exact per-key rates,
    but it inherits the independent-reference (stationary popularity)
    assumption;
  * :func:`reuse_time_hit_counts` — the same eviction-age idea applied
    to the trace's *empirical* reuse-time distribution (the AET model
    of Hu et al., ATC'16): ``T`` solves ``mean_j(s_j * min(fwd_j, T))
    = C`` over per-request forward reuse times, and an access hits iff
    its backward reuse time is at most ``T``.  This reduces to Che
    under the independent-reference model and stays accurate for
    recency-driven workloads (e.g. the "latest" YCSB distribution),
    whose temporal locality a popularity CDF cannot see — so it is
    what :func:`predict_placement` uses.

The analytic path never draws noise, never touches per-request arrays
and never replays the LRU, so it costs O(n_keys) per placement versus
the simulator's O(repeats x n_requests) — the ``accuracy="analytic"``
mode on the :class:`~repro.core.mnemo.Mnemo` facade.  Its error envelope
is quantified against the simulator on the YCSB presets in
``tests/memsim/test_analytic.py`` and recorded in ``BENCH_kernel.json``.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError

#: Bisection iterations for the characteristic time (halves the bracket
#: each step; 100 steps resolve T far below float64 noise).
_BISECT_STEPS = 100
#: Bracket-doubling cap while searching for an upper bound on T.
_DOUBLING_CAP = 200


def che_characteristic_time(
    popularity: np.ndarray, sizes: np.ndarray, capacity_bytes: int,
) -> float:
    """The Che characteristic time T (in requests) of an LRU cache.

    Solves ``sum_k s_k (1 - exp(-p_k T)) = C`` over the keys that can
    fit (``s_k <= C``) and are referenced (``p_k > 0``); oversized
    records bypass the cache, exactly as :class:`~repro.memsim.cache.LLCModel`
    treats them.  Returns ``inf`` when every fitting key's bytes sum to
    at most the capacity — nothing that entered is ever evicted.
    """
    if capacity_bytes <= 0:
        return 0.0
    p = np.asarray(popularity, dtype=np.float64)
    s = np.asarray(sizes, dtype=np.float64)
    active = (p > 0) & (s <= capacity_bytes)
    ps, ss = p[active], s[active]
    if ps.size == 0 or ss.sum() <= capacity_bytes:
        return np.inf

    def resident_bytes(t: float) -> float:
        return float(-(ss * np.expm1(-ps * t)).sum())

    hi = 1.0
    for _ in range(_DOUBLING_CAP):
        if resident_bytes(hi) >= capacity_bytes:
            break
        hi *= 2.0
    lo = 0.0
    for _ in range(_BISECT_STEPS):
        mid = 0.5 * (lo + hi)
        if resident_bytes(mid) < capacity_bytes:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def che_hit_rates(
    counts: np.ndarray, sizes: np.ndarray, capacity_bytes: int,
) -> np.ndarray:
    """Per-key steady-state LRU hit probabilities (Che approximation).

    Parameters
    ----------
    counts:
        Per-key access counts (reads + writes) over the trace.
    sizes:
        Per-key record sizes in bytes.
    capacity_bytes:
        LRU capacity.

    Oversized or never-referenced keys get probability 0.  When the
    referenced working set fits, every fitting key gets 1 — the cache
    never evicts.
    """
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if counts.shape != sizes.shape:
        raise ConfigurationError(
            f"counts and sizes must align, got {counts.shape} vs {sizes.shape}"
        )
    h = np.zeros(counts.shape)
    total = counts.sum()
    if total == 0 or capacity_bytes <= 0:
        return h
    p = counts / total
    active = (p > 0) & (sizes <= capacity_bytes)
    t = che_characteristic_time(p, sizes, capacity_bytes)
    if np.isinf(t):
        h[active] = 1.0
    else:
        h[active] = -np.expm1(-p[active] * t)
    return h


def reuse_time_eviction_age(
    keys: np.ndarray, sizes: np.ndarray, capacity_bytes: int,
) -> float:
    """The average eviction age T (in requests) of a byte-capped LRU.

    Solves ``mean_j(eff_j * min(fwd_j, T)) = C``: an access occupies its
    record's bytes until reuse or eviction, whichever comes first, so
    the left side is the expected resident bytes when entries age out
    ``T`` requests after their last access.  ``fwd_j`` is request j's
    forward reuse time (``inf`` when the key never recurs) and ``eff_j``
    zeroes records larger than the capacity (they bypass the cache).
    Returns ``inf`` when the full working set fits — nothing ages out.
    """
    from repro.memsim.cache import _next_occurrence, _previous_occurrence

    n = keys.size
    if capacity_bytes <= 0 or n == 0:
        return 0.0
    eff = np.where(sizes <= capacity_bytes, sizes, 0).astype(np.float64)
    prev = _previous_occurrence(np.ascontiguousarray(keys))
    nxt = _next_occurrence(prev)
    fwd = np.where(nxt < n, nxt - np.arange(n), n).astype(np.float64)
    order = np.argsort(fwd, kind="stable")
    gaps = fwd[order]
    w = eff[order]
    cum_w = np.cumsum(w)
    cum_gw = np.cumsum(w * gaps)
    total_w = cum_w[-1]
    # resident bytes at T = gaps[i] (piecewise linear, nondecreasing):
    # (sum of w*g over gaps <= T  +  T * remaining weight) / n
    resident = (cum_gw + gaps * (total_w - cum_w)) / n
    if total_w == 0 or resident[-1] <= capacity_bytes:
        return np.inf
    i = int(np.searchsorted(resident, capacity_bytes))
    below_gw = cum_gw[i - 1] if i > 0 else 0.0
    below_w = cum_w[i - 1] if i > 0 else 0.0
    return (capacity_bytes * n - below_gw) / max(total_w - below_w, 1e-300)


def reuse_time_hit_counts(
    keys: np.ndarray, sizes: np.ndarray, n_keys: int, capacity_bytes: int,
) -> np.ndarray:
    """Per-key predicted LLC hit counts from the reuse-time model.

    ``keys`` and ``sizes`` are per-*request* arrays (a trace's ``keys``
    and ``request_sizes``); the result has length ``n_keys``.  An access
    hits iff its record fits and its backward reuse time is at most the
    eviction age from :func:`reuse_time_eviction_age`; first touches
    always miss.  O(n log n), no LRU replay.
    """
    from repro.memsim.cache import _previous_occurrence

    keys = np.ascontiguousarray(keys)
    n = keys.size
    if n == 0 or capacity_bytes <= 0:
        return np.zeros(n_keys, dtype=np.int64)
    age = reuse_time_eviction_age(keys, sizes, capacity_bytes)
    prev = _previous_occurrence(keys)
    gap = np.arange(n) - prev
    hit = (prev >= 0) & (sizes <= capacity_bytes) & (gap <= age)
    return np.bincount(keys[hit], minlength=n_keys)


#: Per-(trace, capacity) reuse-time hit counts.  The counts are
#: placement-independent — the LLC sees the same request stream whatever
#: the placement — so a sweep predicting many placements of one trace
#: pays the O(n log n) reuse-time solve once.  Keyed by object id with a
#: weakref finalizer evicting dead entries (same idiom as the client's
#: fingerprint memos), so a recycled id can never alias.
_hit_counts_memo: dict[tuple[int, int], np.ndarray] = {}


def _cached_hit_counts(trace, capacity_bytes: int) -> np.ndarray:
    key = (id(trace), capacity_bytes)
    hits = _hit_counts_memo.get(key)
    if hits is None:
        hits = reuse_time_hit_counts(
            trace.keys, trace.request_sizes, trace.n_keys, capacity_bytes
        )
        hits.flags.writeable = False
        _hit_counts_memo[key] = hits
        weakref.finalize(trace, _hit_counts_memo.pop, key, None)
    return hits


def _weighted_percentiles(
    values: np.ndarray, weights: np.ndarray, qs: tuple[float, ...],
) -> dict[float, float]:
    """np.percentile-style linear-interpolated quantiles of a weighted sample.

    ``weights`` are (possibly fractional) multiplicities; the quantile
    is taken over the implied expanded sample, matching what
    ``np.percentile`` computes on the materialised per-request times —
    up to the fractional-weight smoothing the LLC hit split introduces.
    """
    keep = weights > 0
    v, w = values[keep], weights[keep]
    order = np.argsort(v, kind="stable")
    v, w = v[order], w[order]
    cum = np.cumsum(w)
    total = cum[-1]
    out: dict[float, float] = {}
    for q in qs:
        pos = q / 100.0 * (total - 1.0)
        pos = min(max(pos, 0.0), total - 1.0)
        j0, j1 = np.floor(pos), np.ceil(pos)
        frac = pos - j0
        v0 = v[min(np.searchsorted(cum, j0, side="right"), v.size - 1)]
        v1 = v[min(np.searchsorted(cum, j1, side="right"), v.size - 1)]
        out[q] = float(v0 + frac * (v1 - v0))
    return out


def predict_placement(trace, profile, system, fast_mask, client):
    """Closed-form ``RunResult`` for one placement of *trace*.

    Mirrors :meth:`~repro.ycsb.client.YCSBClient.execute` — same cost
    formula, same concurrency/contention treatment, same LLC hit-time
    substitution — but aggregated per key, with the LLC predicted by
    :func:`che_hit_rates` (first touches always miss; the Che rate
    applies to re-references) and noise replaced by its mean of 1.
    ``runtime_std_ns`` is reported as 0 — there is nothing stochastic
    to deviate.

    Parameters
    ----------
    trace / profile / system / fast_mask:
        What to predict: the workload, engine cost profile, memory
        system and boolean per-key placement.
    client:
        Supplies the measurement settings the prediction must mirror
        (concurrency, contention, ``use_llc``, repeats, percentiles).
    """
    from repro.ycsb.client import RunResult  # lazy: import cycle

    telemetry.count("memsim.path", path="analytic")
    mask = np.asarray(fast_mask)
    if mask.dtype != np.bool_ or mask.shape != (trace.n_keys,):
        raise ConfigurationError(
            f"placement mask must be bool of shape ({trace.n_keys},), "
            f"got {mask.dtype} {mask.shape}"
        )
    reads, writes = trace.per_key_counts()
    counts = reads + writes
    touched = trace.record_sizes + profile.metadata_bytes
    latency = np.where(mask, system.fast.latency_ns, system.slow.latency_ns)
    bpns = np.where(mask, system.fast.bytes_per_ns, system.slow.bytes_per_ns)
    scale = 1.0
    if client.concurrency > 1:
        scale = 1 + client.contention * (client.concurrency - 1)
    mem = latency + touched / bpns
    read_miss = profile.read_cpu_ns + profile.read_passes * scale * mem
    write_miss = profile.write_cpu_ns + profile.write_passes * scale * mem

    if client.use_llc:
        llc = system.llc
        hit_counts = _cached_hit_counts(trace, llc.capacity_bytes)
        hit_frac = np.divide(
            hit_counts.astype(np.float64),
            counts,
            out=np.zeros(counts.shape, dtype=np.float64),
            where=counts > 0,
        )
        read_hit = np.full(mem.shape, profile.read_cpu_ns + llc.hit_latency_ns)
        write_hit = np.full(
            mem.shape, profile.write_cpu_ns + llc.hit_latency_ns
        )
    else:
        hit_frac = np.zeros(mem.shape)
        read_hit, write_hit = read_miss, write_miss

    read_t = (1 - hit_frac) * read_miss + hit_frac * read_hit
    write_t = (1 - hit_frac) * write_miss + hit_frac * write_hit
    read_total = float((reads * read_t).sum())
    write_total = float((writes * write_t).sum())
    n_reads = int(reads.sum())
    n_writes = int(writes.sum())

    pct: dict[float, float] = {}
    if client.percentiles:
        values = np.concatenate([read_miss, read_hit, write_miss, write_hit])
        weights = np.concatenate([
            reads * (1 - hit_frac), reads * hit_frac,
            writes * (1 - hit_frac), writes * hit_frac,
        ])
        pct = _weighted_percentiles(values, weights, client.percentiles)

    return RunResult(
        workload=trace.name,
        engine=profile.name,
        n_requests=trace.n_requests,
        n_reads=n_reads,
        n_writes=n_writes,
        runtime_ns=(read_total + write_total) / client.concurrency,
        avg_read_ns=read_total / n_reads if n_reads else 0.0,
        avg_write_ns=write_total / n_writes if n_writes else 0.0,
        latency_percentiles_ns=pct,
        repeats=client.repeats,
        runtime_std_ns=0.0,
        concurrency=client.concurrency,
    )


def predict_baselines(trace, profile, system, client):
    """Analytic :class:`~repro.core.sensitivity.PerformanceBaselines`.

    The two extreme placements predicted in closed form — the analytic
    stand-in for :meth:`~repro.core.sensitivity.SensitivityEngine.measure`.
    ``flags`` stay empty: unlike a degraded measurement, an analytic
    profile is a deliberate accuracy choice the caller made, surfaced
    by the facade's ``accuracy`` setting rather than by a confidence
    penalty.
    """
    from repro.core.sensitivity import PerformanceBaselines  # lazy: cycle

    n = trace.n_keys
    fast = predict_placement(
        trace, profile, system, np.ones(n, dtype=bool), client
    )
    slow = predict_placement(
        trace, profile, system, np.zeros(n, dtype=bool), client
    )
    return PerformanceBaselines(fast=fast, slow=slow, flags=())
