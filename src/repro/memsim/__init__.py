"""Hybrid memory system simulator.

This package stands in for the paper's throttled dual-socket testbed
(Section II, Table I).  It models:

- :class:`~repro.memsim.node.MemoryNode` — a memory component with latency,
  bandwidth and capacity (FastMem = DRAM, SlowMem = emulated NVM);
- :class:`~repro.memsim.cache.LLCModel` — the 12 MB shared last-level cache;
- :class:`~repro.memsim.timing.AccessTimer` — the per-access cost model with
  an optional measurement-noise term;
- :class:`~repro.memsim.allocator.AddressSpaceAllocator` — a first-fit
  allocator so node occupancy accounting is real;
- :class:`~repro.memsim.system.HybridMemorySystem` — the Fast/Slow node pair
  with ``numactl``-style binding and the Table I preset.
"""

from repro.memsim.allocator import AddressSpaceAllocator, Allocation
from repro.memsim.cache import LLCModel
from repro.memsim.emulation import (
    TABLE_I_FAST,
    TABLE_I_SLOW,
    ThrottleFactors,
    emulated_slow_node,
    table_i_factors,
)
from repro.memsim.node import MemoryNode, NodeKind
from repro.memsim.system import HybridMemorySystem
from repro.memsim.timing import AccessTimer, NoiseModel

__all__ = [
    "AddressSpaceAllocator",
    "Allocation",
    "LLCModel",
    "MemoryNode",
    "NodeKind",
    "HybridMemorySystem",
    "AccessTimer",
    "NoiseModel",
    "ThrottleFactors",
    "emulated_slow_node",
    "table_i_factors",
    "TABLE_I_FAST",
    "TABLE_I_SLOW",
]
