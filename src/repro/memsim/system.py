"""The hybrid memory system: a FastMem/SlowMem node pair.

Mirrors the paper's testbed (Section II): two memory nodes, a shared
12 MB LLC, and ``numactl``-style binding of server processes to one node.
SlowMem extends the flat address space; FastMem does not act as a cache
for SlowMem (explicit assumption in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsim.cache import LLCModel
from repro.memsim.emulation import TABLE_I_FAST, TABLE_I_SLOW
from repro.memsim.node import MemoryNode, NodeKind
from repro.units import MB


@dataclass
class HybridMemorySystem:
    """A two-node hybrid memory system with a shared LLC.

    Use :meth:`testbed` for the paper's Table I configuration, or
    construct nodes directly for what-if studies (larger capacities,
    different throttle factors, projected Optane parts, ...).
    """

    fast: MemoryNode
    slow: MemoryNode
    llc: LLCModel = field(default_factory=lambda: LLCModel(capacity_bytes=12 * MB))

    def __post_init__(self) -> None:
        if self.fast.kind is not NodeKind.FAST:
            raise ConfigurationError("fast node must have kind NodeKind.FAST")
        if self.slow.kind is not NodeKind.SLOW:
            raise ConfigurationError("slow node must have kind NodeKind.SLOW")
        if self.slow.latency_ns < self.fast.latency_ns:
            raise ConfigurationError(
                "SlowMem latency is below FastMem latency; nodes are swapped?"
            )

    # -- presets ---------------------------------------------------------------

    @classmethod
    def testbed(
        cls,
        fast_capacity_bytes: int | None = None,
        slow_capacity_bytes: int | None = None,
        llc_bytes: int = 12 * MB,
    ) -> "HybridMemorySystem":
        """The paper's emulated testbed (Table I).

        FastMem: 65.7 ns / 14.9 GB/s; SlowMem: 238.1 ns / 1.81 GB/s
        (B:0.12 L:3.62); 12 MB shared LLC; 4 GiB per node by default.
        """
        fast = MemoryNode(
            name="FastMem",
            kind=NodeKind.FAST,
            latency_ns=TABLE_I_FAST["latency_ns"],
            bandwidth_gbps=TABLE_I_FAST["bandwidth_gbps"],
            capacity_bytes=fast_capacity_bytes or TABLE_I_FAST["capacity_bytes"],
        )
        slow = MemoryNode(
            name="SlowMem",
            kind=NodeKind.SLOW,
            latency_ns=TABLE_I_SLOW["latency_ns"],
            bandwidth_gbps=TABLE_I_SLOW["bandwidth_gbps"],
            capacity_bytes=slow_capacity_bytes or TABLE_I_SLOW["capacity_bytes"],
        )
        return cls(fast=fast, slow=slow, llc=LLCModel(capacity_bytes=llc_bytes))

    def degraded(
        self,
        slow_latency_factor: float = 1.0,
        slow_bandwidth_factor: float = 1.0,
        fast_latency_factor: float = 1.0,
        fast_bandwidth_factor: float = 1.0,
    ) -> "HybridMemorySystem":
        """A copy of this system with steady-state device degradation.

        The per-request fault timelines in :mod:`repro.faults` model
        *transient* misbehaviour; this models a device that has settled
        into a worse operating point (worn NVM media, thermal
        throttling) — the scenario under which sizing decisions drift.
        The LLC is shared hardware and carries over unchanged.
        """
        return HybridMemorySystem(
            fast=self.fast.degraded(fast_latency_factor, fast_bandwidth_factor),
            slow=self.slow.degraded(slow_latency_factor, slow_bandwidth_factor),
            llc=LLCModel(
                capacity_bytes=self.llc.capacity_bytes,
                hit_latency_ns=self.llc.hit_latency_ns,
            ),
        )

    # -- numactl-style binding ---------------------------------------------------

    def bind(self, node: str | NodeKind) -> MemoryNode:
        """Resolve a binding target, as ``numactl --membind`` would.

        Accepts ``"fast"``/``"slow"``, a node name, or a :class:`NodeKind`.
        """
        if isinstance(node, NodeKind):
            return self.fast if node is NodeKind.FAST else self.slow
        label = node.lower()
        if label in ("fast", self.fast.name.lower()):
            return self.fast
        if label in ("slow", self.slow.name.lower()):
            return self.slow
        raise ConfigurationError(f"unknown memory node {node!r}")

    @property
    def nodes(self) -> tuple[MemoryNode, MemoryNode]:
        """Both nodes, fast first."""
        return (self.fast, self.slow)

    @property
    def total_capacity_bytes(self) -> int:
        """Combined capacity of both nodes (flat address space)."""
        return self.fast.capacity_bytes + self.slow.capacity_bytes

    def reset(self) -> None:
        """Fresh deployment: drop occupancy and flush the LLC."""
        self.fast.reset()
        self.slow.reset()
        self.llc.reset()

    def describe(self) -> dict[str, dict[str, float]]:
        """Table I-style summary: per-node latency, bandwidth and factors."""
        bw_f, lat_f = self.slow.slowdown_factors(self.fast)
        return {
            "FastMem": {
                "latency_ns": self.fast.latency_ns,
                "bandwidth_gbps": self.fast.bandwidth_gbps,
                "bandwidth_factor": 1.0,
                "latency_factor": 1.0,
            },
            "SlowMem": {
                "latency_ns": self.slow.latency_ns,
                "bandwidth_gbps": self.slow.bandwidth_gbps,
                "bandwidth_factor": bw_f,
                "latency_factor": lat_f,
            },
        }
