"""Mnemo — the memory sizing and data tiering consultant (paper core).

The four engines of Figure 6:

- :class:`~repro.core.sensitivity.SensitivityEngine` — real baselines by
  workload execution;
- :class:`~repro.core.pattern.PatternEngine` — Req(keys) and the tiering
  order;
- :class:`~repro.core.estimate.EstimateEngine` — the analytic sweep over
  incremental FastMem sizings;
- :class:`~repro.core.placement.PlacementEngine` — static key placement.

Facades: :class:`~repro.core.mnemo.Mnemo` (stand-alone, Fig 2a),
:class:`~repro.core.mnemo.ExternalTieringMnemo` (Fig 2b) and
:class:`~repro.core.mnemot.MnemoT` (Fig 2c).
"""

from repro.core.descriptor import WorkloadDescriptor
from repro.core.drift import (
    DriftReport,
    analyze_drift,
    drift_score,
    static_placement_regret,
)
from repro.core.dynamic import RetieringOutcome, simulate_periodic_retiering
from repro.core.estimate import EstimateCurve, EstimateEngine
from repro.core.mnemo import ExternalTieringMnemo, Mnemo
from repro.core.mnemot import MnemoT
from repro.core.pattern import KeyAccessPattern, PatternEngine
from repro.core.placement import PlacementEngine
from repro.core.report import MnemoReport
from repro.core.sensitivity import (
    PerformanceBaselines,
    SensitivityEngine,
    estimate_counterpart,
)
from repro.core.slo import (
    DEFAULT_MAX_SLOWDOWN,
    SizingChoice,
    choice_at,
    min_cost_for_slowdown,
)
from repro.core.validate import (
    MeasuredPoint,
    estimate_errors,
    measure_curve,
    prefix_counts,
)
from repro.core.whatif import (
    DeviceScenario,
    device_sensitivity,
    price_sensitivity,
    recost_curve,
)

__all__ = [
    "WorkloadDescriptor",
    "SensitivityEngine",
    "PerformanceBaselines",
    "estimate_counterpart",
    "PatternEngine",
    "KeyAccessPattern",
    "EstimateEngine",
    "EstimateCurve",
    "PlacementEngine",
    "MnemoReport",
    "Mnemo",
    "ExternalTieringMnemo",
    "MnemoT",
    "SizingChoice",
    "choice_at",
    "min_cost_for_slowdown",
    "DEFAULT_MAX_SLOWDOWN",
    "MeasuredPoint",
    "measure_curve",
    "estimate_errors",
    "prefix_counts",
    "DriftReport",
    "analyze_drift",
    "drift_score",
    "static_placement_regret",
    "DeviceScenario",
    "device_sensitivity",
    "price_sensitivity",
    "recost_curve",
    "RetieringOutcome",
    "simulate_periodic_retiering",
]
