"""Validation helpers: measure real performance along a tiering order.

The paper validates Mnemo by comparing the estimate curve against real
executions at intermediate FastMem:SlowMem ratios (Fig 5 points vs the
solid estimate line; Fig 8a error boxplots).  :func:`measure_curve`
produces those real points, and :func:`estimate_errors` computes the
paper's percentage error ``(r - e) / r * 100`` between them and the
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cost.model import DEFAULT_PRICE_FACTOR, cost_reduction_factor
from repro.errors import ConfigurationError
from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import RunResult, YCSBClient
from repro.ycsb.workload import Trace
from repro.core.estimate import EstimateCurve


@dataclass(frozen=True)
class MeasuredPoint:
    """One real execution at an intermediate tiering."""

    n_fast_keys: int
    fast_bytes: int
    cost_factor: float
    result: RunResult


def prefix_counts(n_keys: int, n_points: int) -> list[int]:
    """Evenly spaced tiering prefixes from 0 to *n_keys* inclusive."""
    if n_points < 2:
        raise ConfigurationError(f"need at least 2 points, got {n_points}")
    return [int(round(x)) for x in np.linspace(0, n_keys, n_points)]


def measure_curve(
    trace: Trace,
    order: np.ndarray,
    engine_factory: EngineFactory,
    counts: Sequence[int],
    client: YCSBClient | None = None,
    system_factory: Callable[[], HybridMemorySystem] = HybridMemorySystem.testbed,
    p: float = DEFAULT_PRICE_FACTOR,
) -> list[MeasuredPoint]:
    """Execute *trace* at each tiering prefix in *counts*.

    Each point deploys a fresh system with the first ``counts[i]`` keys
    of *order* on FastMem and runs the full workload against it.
    """
    client = client if client is not None else YCSBClient()
    order = np.asarray(order, dtype=np.int64)
    total = int(trace.record_sizes.sum())
    points = []
    for n_fast in counts:
        if not 0 <= n_fast <= order.size:
            raise ConfigurationError(
                f"prefix {n_fast} outside [0, {order.size}]"
            )
        fast_keys = order[:n_fast]
        deployment = HybridDeployment(
            engine_factory, system_factory(), trace.record_sizes,
            fast_keys=fast_keys,
        )
        fast_bytes = int(trace.record_sizes[fast_keys].sum())
        points.append(
            MeasuredPoint(
                n_fast_keys=int(n_fast),
                fast_bytes=fast_bytes,
                cost_factor=float(cost_reduction_factor(fast_bytes, total, p)),
                result=client.execute(trace, deployment),
            )
        )
    return points


def estimate_errors(
    curve: EstimateCurve,
    measured: Sequence[MeasuredPoint],
    metric: str = "throughput",
) -> np.ndarray:
    """Per-point percentage error ``(r - e) / r * 100`` (paper Section V-A).

    Parameters
    ----------
    metric:
        ``"throughput"`` (Fig 8a) or ``"avg_latency"`` (Fig 8c).
    """
    if metric not in ("throughput", "avg_latency"):
        raise ConfigurationError(f"unknown metric {metric!r}")
    errors = np.empty(len(measured))
    thr = curve.throughput_ops_s
    lat = curve.avg_latency_ns
    for i, point in enumerate(measured):
        if metric == "throughput":
            real = point.result.throughput_ops_s
            est = float(thr[point.n_fast_keys])
        else:
            real = point.result.avg_latency_ns
            est = float(lat[point.n_fast_keys])
        errors[i] = (real - est) / real * 100.0
    return errors
