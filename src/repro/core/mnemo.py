"""The Mnemo facade — wires the four engines together (Figure 6).

Typical use::

    from repro import Mnemo, RedisLike
    from repro.ycsb import generate_trace, workload_by_name

    trace = generate_trace(workload_by_name("trending"))
    mnemo = Mnemo(engine_factory=RedisLike)
    report = mnemo.profile(trace)
    choice = report.choose(max_slowdown=0.10)
    deployment = mnemo.place(report, choice)
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import telemetry
from repro.cost.model import DEFAULT_PRICE_FACTOR
from repro.errors import ConfigurationError
from repro.kvstore.redislike import RedisLike
from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import YCSBClient
from repro.ycsb.workload import Trace
from repro.core.descriptor import WorkloadDescriptor
from repro.core.estimate import EstimateEngine
from repro.core.pattern import PatternEngine
from repro.core.placement import PlacementEngine
from repro.core.report import MnemoReport
from repro.core.sensitivity import SensitivityEngine
from repro.core.slo import SizingChoice


class Mnemo:
    """The capacity-sizing consultant (stand-alone configuration, Fig 2a).

    Parameters
    ----------
    engine_factory:
        The key-value store under test (default: :class:`RedisLike`).
    system_factory:
        Builds fresh hybrid memory systems (default: Table I testbed).
    client:
        The measuring YCSB client.
    p:
        SlowMem per-byte price as a fraction of FastMem's (paper: 0.2).
    cache:
        Optional result cache (path or
        :class:`~repro.runner.cache.ResultCache`).  Profiling the same
        workload twice — across runs, processes or tools — then recalls
        the baselines bit-identically instead of re-measuring them.
    pattern_mode:
        Tiering-order mode for the Pattern Engine; the stand-alone tool
        uses ``"touch"`` (keys as the workload touches them).
    accuracy:
        ``"simulate"`` (default) measures the baselines through the
        full simulator; ``"analytic"`` predicts them in closed form via
        the Che-approximation fast path
        (:mod:`repro.memsim.analytic`) — orders of magnitude cheaper,
        within a few percent on the YCSB presets (see
        ``docs/KERNEL.md`` for the error envelope).  Overridable per
        :meth:`profile` call.
    """

    pattern_mode = "touch"

    def __init__(
        self,
        engine_factory: EngineFactory = RedisLike,
        system_factory: Callable[[], HybridMemorySystem] = HybridMemorySystem.testbed,
        client: YCSBClient | None = None,
        p: float = DEFAULT_PRICE_FACTOR,
        cache=None,
        accuracy: str = "simulate",
    ):
        self.accuracy = self._check_accuracy(accuracy)
        self.engine_factory = engine_factory
        self.system_factory = system_factory
        client = client if client is not None else YCSBClient()
        if cache is not None:
            from repro.runner.caching import CachingClient
            client = CachingClient.wrap(client, cache)
        self.client = client
        self.sensitivity = SensitivityEngine(
            engine_factory, system_factory, self.client
        )
        self.pattern_engine = PatternEngine(mode=self.pattern_mode)
        self.estimate_engine = EstimateEngine(p=p)
        self.placement_engine = PlacementEngine(engine_factory)

    # -- profiling -------------------------------------------------------------------

    @staticmethod
    def _check_accuracy(accuracy: str) -> str:
        if accuracy not in ("simulate", "analytic"):
            raise ConfigurationError(
                f"accuracy must be 'simulate' or 'analytic', got {accuracy!r}"
            )
        return accuracy

    def _analytic_baselines(self, descriptor: WorkloadDescriptor):
        """Closed-form baselines via the Che-approximation fast path."""
        from repro.memsim.analytic import predict_baselines

        system = self.system_factory()
        profile = self.engine_factory(system.fast, system.slow).profile
        return predict_baselines(
            descriptor.to_trace(), profile, system, self.client
        )

    def profile(
        self,
        workload: Trace | WorkloadDescriptor,
        external_order: np.ndarray | None = None,
        allow_partial: bool = False,
        accuracy: str | None = None,
    ) -> MnemoReport:
        """Run the full Mnemo pipeline on a workload.

        Parameters
        ----------
        workload:
            A generated trace or a user-supplied descriptor.
        external_order:
            A key ordering from an existing tiering solution (the
            Fig 2b configuration); only valid when ``pattern_mode`` is
            ``"external"``.
        allow_partial:
            Degrade gracefully when a baseline measurement fails: the
            missing extreme is synthesised analytically and the report's
            :attr:`~repro.core.report.MnemoReport.confidence` drops
            below 1.0 instead of the pipeline crashing.
        accuracy:
            Override this consultant's baseline mode for one call:
            ``"simulate"`` measures, ``"analytic"`` predicts in closed
            form (``allow_partial`` is then irrelevant — there is no
            measurement to fail).
        """
        mode = self._check_accuracy(
            accuracy if accuracy is not None else self.accuracy
        )
        descriptor = (
            workload
            if isinstance(workload, WorkloadDescriptor)
            else WorkloadDescriptor.from_trace(workload)
        )
        with telemetry.span(
            "mnemo.profile", workload=descriptor.name, accuracy=mode,
        ):
            if mode == "analytic":
                baselines = self._analytic_baselines(descriptor)
            else:
                baselines = self.sensitivity.measure(
                    descriptor, allow_partial=allow_partial
                )
            if baselines.flags:
                telemetry.event(
                    "mnemo.degraded_baselines",
                    workload=descriptor.name,
                    flags=[str(f) for f in baselines.flags],
                )
            pattern = self.pattern_engine.analyze(descriptor, external_order)
            curve = self.estimate_engine.estimate(baselines, pattern)
        return MnemoReport(
            workload=descriptor.name,
            engine=curve.engine,
            baselines=baselines,
            pattern=pattern,
            curve=curve,
        )

    # -- guarding ---------------------------------------------------------------------

    def guard_loop(
        self,
        budget=None,
        thresholds=None,
        policy=None,
        cache=None,
    ):
        """A :class:`~repro.guard.loop.GuardLoop` around this consultant.

        The loop reuses this instance's engines and measuring client, so
        validation replays happen under exactly the configuration the
        baselines were measured with.  See ``docs/GUARD.md`` for the
        error-budget, drift-threshold and margin parameters.
        """
        from repro.guard.loop import GuardLoop  # lazy: avoid an import cycle

        return GuardLoop(
            self,
            budget=budget,
            thresholds=thresholds,
            policy=policy,
            cache=cache,
        )

    # -- placement --------------------------------------------------------------------

    def place(
        self,
        report: MnemoReport,
        choice: SizingChoice,
        system: HybridMemorySystem | None = None,
    ) -> HybridDeployment:
        """Statically deploy the sizing selected from *report*."""
        return self.placement_engine.realize(
            report.curve,
            choice,
            report.pattern.sizes,
            system if system is not None else self.system_factory(),
        )


class ExternalTieringMnemo(Mnemo):
    """Mnemo fed by an existing generic tiering solution (Fig 2b).

    ``profile`` requires ``external_order`` — the DRAM-priority key
    ordering the external tool produced; Mnemo then sweeps incremental
    sizings along that ordering.
    """

    pattern_mode = "external"
