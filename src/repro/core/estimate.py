"""The Estimate Engine.

"Mnemo calculates the workload's throughput for incremental tiering of
the key space across FastMem and SlowMem ... It then correlates the
throughput to the system cost" (Section IV).

The analytical model starts from the measured SlowMem-only runtime and
subtracts, for every request whose key is tiered into FastMem, the
average per-request saving observed between the two baselines:

    runtime(prefix) = SlowRuntime
                      - reads_fast  * (SlowReadTime  - FastReadTime)
                      - writes_fast * (SlowWriteTime - FastWriteTime)

    throughput(prefix)  = Requests / runtime(prefix)
    avg_latency(prefix) = runtime(prefix) / Requests

(The paper prints the throughput relation with the fraction inverted;
we implement the dimensionally consistent form.)  The cost factor of a
prefix follows the Section II model with the prefix's cumulative bytes
as the FastMem capacity.  The whole sweep — one curve point per key —
is three cumulative sums.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cost.model import DEFAULT_PRICE_FACTOR, cost_reduction_factor
from repro.errors import EstimateError
from repro.units import NS_PER_S
from repro.core.pattern import KeyAccessPattern
from repro.core.sensitivity import PerformanceBaselines


@dataclass(frozen=True)
class EstimateCurve:
    """Mnemo's output: one point per incremental key tiering.

    Point ``i`` describes the configuration where the first ``i`` keys
    of the tiering order live in FastMem (point 0 = SlowMem-only; point
    ``n_keys`` = FastMem-only).  Arrays all have ``n_keys + 1`` entries.
    """

    workload: str
    engine: str
    order: np.ndarray             # key ids, tiering priority (n_keys,)
    fast_bytes: np.ndarray        # cumulative FastMem capacity (n+1,)
    cost_factor: np.ndarray       # R(p) per point (n+1,)
    runtime_ns: np.ndarray        # estimated runtime (n+1,)
    n_requests: int
    p: float

    # -- derived ------------------------------------------------------------------

    @property
    def n_keys(self) -> int:
        """Number of keys in the tiering order."""
        return self.order.size

    @property
    def throughput_ops_s(self) -> np.ndarray:
        """Estimated throughput per point."""
        return self.n_requests / (self.runtime_ns / NS_PER_S)

    @property
    def avg_latency_ns(self) -> np.ndarray:
        """Estimated average request latency per point."""
        return self.runtime_ns / self.n_requests

    @property
    def capacity_ratio(self) -> np.ndarray:
        """FastMem bytes / total bytes per point (0..1)."""
        return self.fast_bytes / self.fast_bytes[-1]

    # -- lookups ------------------------------------------------------------------

    def point_for_keys(self, n_fast_keys: int) -> dict[str, float]:
        """The curve point where the first *n_fast_keys* keys are fast."""
        if not 0 <= n_fast_keys <= self.n_keys:
            raise EstimateError(
                f"n_fast_keys must be in [0, {self.n_keys}], got {n_fast_keys}"
            )
        i = n_fast_keys
        return {
            "n_fast_keys": float(i),
            "fast_bytes": float(self.fast_bytes[i]),
            "cost_factor": float(self.cost_factor[i]),
            "runtime_ns": float(self.runtime_ns[i]),
            "throughput_ops_s": float(self.throughput_ops_s[i]),
            "avg_latency_ns": float(self.avg_latency_ns[i]),
        }

    def keys_for_ratio(self, ratio: float) -> int:
        """Smallest prefix whose FastMem share reaches *ratio* (0..1)."""
        if not 0 <= ratio <= 1:
            raise EstimateError(f"ratio must be in [0, 1], got {ratio}")
        return int(np.searchsorted(self.capacity_ratio, ratio, side="left"))

    def throughput_at_cost(self, r: float) -> float:
        """Interpolated estimated throughput at cost factor *r*."""
        lo, hi = float(self.cost_factor[0]), float(self.cost_factor[-1])
        if not lo <= r <= hi:
            raise EstimateError(
                f"cost factor {r} outside the curve's range [{lo:.3f}, {hi:.3f}]"
            )
        return float(np.interp(r, self.cost_factor, self.throughput_ops_s))

    # -- output (Section IV "Interfacing with Mnemo") --------------------------------

    def write_csv(self, path: str | Path) -> Path:
        """Write the paper's 3-column CSV: key id, estimate, cost factor.

        Row *i* holds key ``order[i]`` and describes the configuration
        where FastMem serves all keys up to and including that row.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        thr = self.throughput_ops_s
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["key", "estimated_throughput_ops_s", "cost_factor"])
            for i, key in enumerate(self.order.tolist(), start=1):
                writer.writerow([key, f"{thr[i]:.3f}", f"{self.cost_factor[i]:.6f}"])
        return path


class EstimateEngine:
    """Runs the analytical model over a pattern + baselines pair."""

    def __init__(self, p: float = DEFAULT_PRICE_FACTOR):
        self.p = p

    def estimate(
        self,
        baselines: PerformanceBaselines,
        pattern: KeyAccessPattern,
    ) -> EstimateCurve:
        """Produce the cost/performance trade-off curve."""
        slow = baselines.slow
        n_requests = slow.n_requests
        if n_requests <= 0:
            raise EstimateError("baselines cover an empty workload")

        cum_reads = np.concatenate(([0], np.cumsum(pattern.ordered_reads())))
        cum_writes = np.concatenate(([0], np.cumsum(pattern.ordered_writes())))
        cum_bytes = np.concatenate(
            ([0], np.cumsum(pattern.ordered_sizes(), dtype=np.int64))
        )

        runtime = (
            baselines.slow_runtime_ns
            - cum_reads * baselines.read_delta_ns
            - cum_writes * baselines.write_delta_ns
        )
        if (runtime <= 0).any():
            raise EstimateError(
                "estimated runtime went non-positive; baselines are inconsistent"
            )
        total = cum_bytes[-1]
        cost = cost_reduction_factor(cum_bytes, total, self.p)

        return EstimateCurve(
            workload=slow.workload,
            engine=slow.engine,
            order=pattern.order,
            fast_bytes=cum_bytes.astype(np.float64),
            cost_factor=np.asarray(cost, dtype=np.float64),
            runtime_ns=runtime,
            n_requests=n_requests,
            p=self.p,
        )
