"""MnemoT — the key-value-store-optimized tiering extension (Fig 2c, Fig 7).

Identical architecture to Mnemo; the Pattern Engine additionally takes
key-value sizes as input and "associates each key with a placement
weight ... the number of accesses the key receives, divided by the size
of the key-value pair" (Section IV).  Hot keys are prioritised for
FastMem and small keys get an advantage — the ordering existing tiering
solutions compute with heavyweight instrumentation, produced here at
zero profiling overhead from the workload description alone.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.baselines.knapsack import knapsack_tiering
from repro.core.mnemo import Mnemo
from repro.core.report import MnemoReport


class MnemoT(Mnemo):
    """Mnemo with the accesses/size weighted tiering order."""

    pattern_mode = "weight"

    def knapsack_placement(
        self, report: MnemoReport, fast_capacity_bytes: int,
        exact: bool = False,
    ) -> np.ndarray:
        """Key set for a *fixed* FastMem capacity via 0/1 knapsack.

        Some existing solutions "map the tiering problem to the 0/1
        knapsack" (Section IV).  MnemoT's incremental curve subsumes
        this for sizing decisions, but for a fixed capacity the
        knapsack selection is the optimal static placement.

        Parameters
        ----------
        fast_capacity_bytes:
            The fixed FastMem capacity to fill.
        exact:
            Use the exact DP solver (slow beyond a few thousand keys)
            instead of the density greedy.
        """
        if fast_capacity_bytes < 0:
            raise ConfigurationError("capacity must be >= 0")
        pattern = report.pattern
        return knapsack_tiering(
            values=pattern.accesses_per_key.astype(np.float64),
            sizes=pattern.sizes,
            capacity=fast_capacity_bytes,
            exact=exact,
        )
