"""Periodic re-tiering simulation (extension).

Mnemo provides "a static key allocation, with no support for dynamic
data migration" (Section IV).  The drift module measures what an
*ideal* migrating tier would gain; this module prices the realistic
version: re-run the Pattern Engine every window and migrate the
placement diff over the memory bus, charging the copy time against the
gains.  The result quantifies when the paper's static-only scope is the
right call (stationary workloads: migration is pure overhead) and when
it genuinely leaves money on the table (News-Feed-style drift).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import NS_PER_S
from repro.ycsb.workload import Trace
from repro.core.drift import window_counts
from repro.core.sensitivity import PerformanceBaselines


@dataclass(frozen=True)
class RetieringOutcome:
    """Static vs periodically re-tiered execution, estimated."""

    workload: str
    n_windows: int
    capacity_fraction: float
    static_runtime_ns: float
    dynamic_runtime_ns: float     # includes migration time
    migration_ns: float           # total copy time charged
    migrated_bytes: int

    @property
    def static_throughput_ops_s(self) -> float:
        """Estimated throughput of the static placement."""
        return self._thr(self.static_runtime_ns)

    @property
    def dynamic_throughput_ops_s(self) -> float:
        """Estimated throughput with periodic re-tiering."""
        return self._thr(self.dynamic_runtime_ns)

    def _thr(self, runtime: float) -> float:
        return self.n_requests / (runtime / NS_PER_S)

    n_requests: int = 0

    @property
    def speedup(self) -> float:
        """Dynamic over static throughput (>1 = migration pays off)."""
        return self.static_runtime_ns / self.dynamic_runtime_ns

    @property
    def worth_migrating(self) -> bool:
        """True when re-tiering wins even after paying for the copies."""
        return self.speedup > 1.0


def _budgeted_placement(counts: np.ndarray, sizes: np.ndarray,
                        budget: int) -> np.ndarray:
    """Boolean FastMem mask: weight-ordered greedy fill of *budget*."""
    order = np.argsort(-(counts / sizes), kind="stable")
    csum = np.cumsum(sizes[order])
    n_fit = int(np.searchsorted(csum, budget, side="right"))
    mask = np.zeros(sizes.size, dtype=bool)
    mask[order[:n_fit]] = True
    return mask


def simulate_periodic_retiering(
    trace: Trace,
    baselines: PerformanceBaselines,
    capacity_fraction: float = 0.2,
    n_windows: int = 10,
    migration_bandwidth_gbps: float = 1.81,
) -> RetieringOutcome:
    """Estimate static vs per-window re-tiered execution.

    Both variants use the same analytic model (per-request savings from
    the measured baselines).  The dynamic variant recomputes the
    placement each window from that window's counts and pays
    ``moved bytes / migration bandwidth`` per transition — migrations
    stream over the SlowMem link, so its Table I bandwidth is the
    default.

    Notes
    -----
    The dynamic variant is *clairvoyant within the window* (it places
    using the window's own counts); a production migrator would predict
    from the previous window.  This makes the outcome an upper bound on
    realistic migration gains — strengthening the conclusion whenever
    static wins anyway.
    """
    if not 0 < capacity_fraction <= 1:
        raise ConfigurationError("capacity_fraction must be in (0, 1]")
    if migration_bandwidth_gbps <= 0:
        raise ConfigurationError("migration bandwidth must be positive")

    sizes = trace.record_sizes
    budget = int(capacity_fraction * sizes.sum())
    read_delta = baselines.read_delta_ns
    write_delta = baselines.write_delta_ns
    read_frac = trace.read_fraction

    counts = window_counts(trace, n_windows)
    total_counts = counts.sum(axis=0)

    def window_savings(mask: np.ndarray, window: np.ndarray) -> float:
        """Runtime saved in one window by FastMem placement *mask*.

        Reads and writes are split by the trace-wide ratio (windows are
        slices of the same request mix).
        """
        fast_requests = float(window[mask].sum())
        return fast_requests * (read_frac * read_delta
                                + (1 - read_frac) * write_delta)

    # static: one placement from the global pattern
    static_mask = _budgeted_placement(total_counts, sizes, budget)
    static_savings = sum(window_savings(static_mask, w) for w in counts)
    static_runtime = baselines.slow_runtime_ns - static_savings

    # dynamic: per-window placement + migration charges
    dynamic_savings = 0.0
    migrated_bytes = 0
    prev_mask = np.zeros(sizes.size, dtype=bool)
    for w in counts:
        mask = _budgeted_placement(w, sizes, budget)
        dynamic_savings += window_savings(mask, w)
        moved = mask & ~prev_mask  # promotions; demotions overlap the copy
        migrated_bytes += int(sizes[moved].sum())
        prev_mask = mask
    migration_ns = migrated_bytes / migration_bandwidth_gbps
    dynamic_runtime = (baselines.slow_runtime_ns - dynamic_savings
                       + migration_ns)

    return RetieringOutcome(
        workload=trace.name,
        n_windows=n_windows,
        capacity_fraction=capacity_fraction,
        static_runtime_ns=float(static_runtime),
        dynamic_runtime_ns=float(dynamic_runtime),
        migration_ns=float(migration_ns),
        migrated_bytes=migrated_bytes,
        n_requests=trace.n_requests,
    )
