"""SLO-driven sizing choices.

"Mnemo is able to automate the process of finding the sweet spot between
cost efficiency and ensured performance guarantees" (Section VI).
Figure 9 uses the common 10 % permissible-slowdown SLO: find the
cheapest configuration whose estimated throughput stays within 10 % of
the FastMem-only ideal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, EstimateError
from repro.core.estimate import EstimateCurve

#: The SLO used throughout the paper's Figure 9.
DEFAULT_MAX_SLOWDOWN = 0.10


@dataclass(frozen=True)
class SizingChoice:
    """The selected FastMem:SlowMem sizing and its predicted behaviour."""

    workload: str
    engine: str
    max_slowdown: float
    n_fast_keys: int
    fast_bytes: float
    capacity_ratio: float         # FastMem share of total capacity
    cost_factor: float            # R(p), fraction of FastMem-only cost
    est_throughput_ops_s: float
    slowdown: float               # predicted slowdown vs FastMem-only

    @property
    def savings_percent(self) -> float:
        """Predicted memory-cost saving vs a FastMem-only system."""
        return (1.0 - self.cost_factor) * 100.0


def choice_at(
    curve: EstimateCurve,
    n_fast_keys: int,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    reference_throughput: float | None = None,
) -> SizingChoice:
    """The :class:`SizingChoice` describing an arbitrary curve point.

    Used by the guard's fallback search to materialise the sizing at a
    probed prefix; ``max_slowdown`` records the SLO the choice is meant
    to serve (the predicted ``slowdown`` may legitimately exceed it for
    a rejected candidate).
    """
    if not 0 <= n_fast_keys <= curve.n_keys:
        raise ConfigurationError(
            f"n_fast_keys must be in [0, {curve.n_keys}], got {n_fast_keys}"
        )
    thr = curve.throughput_ops_s
    ref = reference_throughput if reference_throughput is not None else float(thr[-1])
    if ref <= 0:
        raise EstimateError("reference throughput must be positive")
    i = int(n_fast_keys)
    return SizingChoice(
        workload=curve.workload,
        engine=curve.engine,
        max_slowdown=max_slowdown,
        n_fast_keys=i,
        fast_bytes=float(curve.fast_bytes[i]),
        capacity_ratio=float(curve.capacity_ratio[i]),
        cost_factor=float(curve.cost_factor[i]),
        est_throughput_ops_s=float(thr[i]),
        slowdown=float(1.0 - thr[i] / ref),
    )


def min_cost_for_slowdown(
    curve: EstimateCurve,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    reference_throughput: float | None = None,
) -> SizingChoice:
    """Cheapest curve point within *max_slowdown* of the ideal.

    Parameters
    ----------
    curve:
        An estimate curve (cost factors ascend along the prefix).
    max_slowdown:
        Permissible throughput loss vs FastMem-only (0.10 = 10 %).
    reference_throughput:
        The ideal to compare against; defaults to the curve's last
        point (the FastMem-only estimate, which matches the measured
        fast baseline by construction).
    """
    if not 0 <= max_slowdown < 1:
        raise ConfigurationError(
            f"max_slowdown must be in [0, 1), got {max_slowdown}"
        )
    thr = curve.throughput_ops_s
    ref = reference_throughput if reference_throughput is not None else float(thr[-1])
    if ref <= 0:
        raise EstimateError("reference throughput must be positive")
    floor = (1.0 - max_slowdown) * ref
    ok = np.nonzero(thr >= floor)[0]
    if ok.size == 0:
        raise EstimateError(
            "no configuration meets the SLO — even FastMem-only is below "
            "the reference"
        )
    i = int(ok[0])  # throughput is monotone along the prefix, first hit = cheapest
    return SizingChoice(
        workload=curve.workload,
        engine=curve.engine,
        max_slowdown=max_slowdown,
        n_fast_keys=i,
        fast_bytes=float(curve.fast_bytes[i]),
        capacity_ratio=float(curve.capacity_ratio[i]),
        cost_factor=float(curve.cost_factor[i]),
        est_throughput_ops_s=float(thr[i]),
        slowdown=float(1.0 - thr[i] / ref),
    )
