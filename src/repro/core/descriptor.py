"""Workload descriptors — Mnemo's input format.

Mnemo "does not perform fine-grained execution monitoring.  Instead,
users are expected to provide ... a target workload descriptor,
comprised of ... key access distribution and request type sequence for
a given dataset" (Section IV).  A :class:`WorkloadDescriptor` is exactly
that: the key sequence, the per-request type, and the per-key value
sizes.  It is trivially obtained from a generated
:class:`~repro.ycsb.workload.Trace` or from the CSV pair written by
:mod:`repro.ycsb.trace_io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ycsb.trace_io import load_trace_csv
from repro.ycsb.workload import Trace


@dataclass(frozen=True)
class WorkloadDescriptor:
    """The user-supplied workload description.

    Attributes
    ----------
    name:
        Workload identifier.
    keys / is_read:
        The request sequence: key ids and operation types.
    record_sizes:
        Per-key value sizes (bytes).  MnemoT's Pattern Engine needs
        these for the accesses/size weights; stand-alone Mnemo only
        needs them to map key tierings to capacities.
    """

    name: str
    keys: np.ndarray
    is_read: np.ndarray
    record_sizes: np.ndarray

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "WorkloadDescriptor":
        """Wrap a generated trace."""
        return cls(
            name=trace.name,
            keys=trace.keys,
            is_read=trace.is_read,
            record_sizes=trace.record_sizes,
        )

    @classmethod
    def from_csv(
        cls, requests_path: str | Path, dataset_path: str | Path,
        name: str | None = None,
    ) -> "WorkloadDescriptor":
        """Load the CSV pair written by :func:`repro.ycsb.trace_io.save_trace_csv`."""
        return cls.from_trace(load_trace_csv(requests_path, dataset_path, name))

    # -- views ----------------------------------------------------------------------

    def to_trace(self) -> Trace:
        """The equivalent :class:`Trace` (validates shapes on the way)."""
        return Trace(
            name=self.name,
            keys=self.keys,
            is_read=self.is_read,
            record_sizes=self.record_sizes,
        )

    @property
    def n_keys(self) -> int:
        """Size of the key space."""
        return self.record_sizes.size

    @property
    def n_requests(self) -> int:
        """Number of requests in the descriptor."""
        return self.keys.size

    @property
    def dataset_bytes(self) -> int:
        """Total payload of the dataset — Mnemo's fixed total capacity
        ("Mnemo uses a fixed total capacity to be the dataset size of
        the key-value store", Section IV)."""
        return int(self.record_sizes.sum())
