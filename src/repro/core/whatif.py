"""What-if analysis: sizing robustness to NVM uncertainty (extension).

The paper fixes p = 0.2 "based on price estimates used in prior
research" while noting that "the concrete price point of these
technologies is not presently known" and that real deployments should
derive it "from actual memory hardware cost, or the pricing of Virtual
Machine instances" (Sections I-II).  Device speeds are projections too.

A consultant should therefore report how sensitive its recommendation
is to those unknowns:

- :func:`price_sensitivity` re-costs an existing estimate curve under a
  range of price factors (free — the performance estimate is
  independent of p) and returns the SLO choice per price point;
- :func:`device_sensitivity` re-profiles the workload under alternative
  SlowMem throttle factors (slower/faster NVM parts) and reports how
  the throughput gap and the SLO sizing move.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.cost.model import cost_reduction_factor
from repro.errors import ConfigurationError
from repro.kvstore.server import EngineFactory
from repro.memsim.emulation import ThrottleFactors, emulated_slow_node
from repro.memsim.node import MemoryNode, NodeKind
from repro.memsim.system import HybridMemorySystem
from repro.memsim.emulation import TABLE_I_FAST
from repro.ycsb.client import YCSBClient
from repro.ycsb.workload import Trace
from repro.core.estimate import EstimateCurve
from repro.core.slo import DEFAULT_MAX_SLOWDOWN, SizingChoice, min_cost_for_slowdown


def recost_curve(curve: EstimateCurve, p: float) -> EstimateCurve:
    """The same performance estimate under a different price factor.

    Performance does not depend on p, so only the cost axis moves —
    this is free, unlike re-profiling.
    """
    total = float(curve.fast_bytes[-1])
    new_cost = cost_reduction_factor(curve.fast_bytes, total, p)
    return replace(curve, cost_factor=np.asarray(new_cost), p=p)


def price_sensitivity(
    curve: EstimateCurve,
    p_values: Sequence[float],
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> dict[float, SizingChoice]:
    """SLO sizing choice per candidate price factor."""
    if not p_values:
        raise ConfigurationError("need at least one price factor")
    return {
        p: min_cost_for_slowdown(recost_curve(curve, p), max_slowdown)
        for p in p_values
    }


@dataclass(frozen=True)
class DeviceScenario:
    """One candidate SlowMem part."""

    name: str
    factors: ThrottleFactors
    p: float = 0.2


@dataclass(frozen=True)
class DeviceOutcome:
    """Profiling results under one device scenario."""

    scenario: DeviceScenario
    throughput_gap: float
    choice: SizingChoice


def _system_factory_for(
    factors: ThrottleFactors,
) -> Callable[[], HybridMemorySystem]:
    def build() -> HybridMemorySystem:
        fast = MemoryNode(
            name="FastMem", kind=NodeKind.FAST,
            latency_ns=TABLE_I_FAST["latency_ns"],
            bandwidth_gbps=TABLE_I_FAST["bandwidth_gbps"],
            capacity_bytes=TABLE_I_FAST["capacity_bytes"],
        )
        return HybridMemorySystem(
            fast=fast, slow=emulated_slow_node(fast, factors)
        )

    return build


def device_sensitivity(
    trace: Trace,
    engine_factory: EngineFactory,
    scenarios: Sequence[DeviceScenario],
    client: YCSBClient | None = None,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> list[DeviceOutcome]:
    """Re-profile under each device scenario (one Mnemo run each)."""
    from repro.core.mnemo import Mnemo  # local import avoids a cycle

    if not scenarios:
        raise ConfigurationError("need at least one device scenario")
    outcomes = []
    for scenario in scenarios:
        mnemo = Mnemo(
            engine_factory=engine_factory,
            system_factory=_system_factory_for(scenario.factors),
            client=client if client is not None else YCSBClient(),
            p=scenario.p,
        )
        report = mnemo.profile(trace)
        outcomes.append(DeviceOutcome(
            scenario=scenario,
            throughput_gap=report.baselines.throughput_gap,
            choice=report.choose(max_slowdown),
        ))
    return outcomes


#: Projected NVDIMM price band: 3-7x cheaper than DRAM (paper Section I).
PRICE_BAND = (1 / 7, 1 / 5, 1 / 4, 1 / 3)

#: Candidate SlowMem parts around the Table I emulation.
DEFAULT_SCENARIOS = (
    DeviceScenario("table-i (emulated)", ThrottleFactors(0.12, 3.62)),
    DeviceScenario("faster part", ThrottleFactors(0.25, 2.0)),
    DeviceScenario("slower part", ThrottleFactors(0.06, 6.0)),
)
