"""Access-pattern drift analysis (extension).

Mnemo "provides a static key allocation, with no support for dynamic
data migration" (Section IV), and Figure 9 shows the consequence: the
News Feed workload — whose hot set *shifts* through the key space —
barely presents any cost-reduction opportunity under static placement.

This module quantifies that effect so the consultant can warn its user:

- :func:`window_counts` splits a trace into time windows and counts
  per-key accesses per window;
- :func:`drift_score` measures how much the hot set moves between
  consecutive windows (1 − mean Jaccard overlap of the top keys);
- :func:`static_placement_regret` compares the FastMem hit fraction of
  the best *static* placement against a per-window *oracle* placement
  at the same capacity — the headroom a dynamic tiering system could
  reclaim;
- :func:`analyze_drift` bundles both into a recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ycsb.workload import Trace


def window_counts(trace: Trace, n_windows: int = 10) -> np.ndarray:
    """Per-window per-key access counts, shape ``(n_windows, n_keys)``.

    Windows are equal slices of the request sequence (the trace's
    temporal order is meaningful — the generator preserves it).
    """
    if n_windows < 2:
        raise ConfigurationError(f"need >= 2 windows, got {n_windows}")
    if trace.n_requests < n_windows:
        raise ConfigurationError(
            f"trace has {trace.n_requests} requests < {n_windows} windows"
        )
    bounds = np.linspace(0, trace.n_requests, n_windows + 1).astype(int)
    out = np.zeros((n_windows, trace.n_keys), dtype=np.int64)
    for w in range(n_windows):
        segment = trace.keys[bounds[w]:bounds[w + 1]]
        out[w] = np.bincount(segment, minlength=trace.n_keys)
    return out


def _top_keys(counts: np.ndarray, k: int) -> np.ndarray:
    """Ids of the k most-accessed keys (ties by key id)."""
    return np.argsort(-counts, kind="stable")[:k]


def drift_score(trace: Trace, n_windows: int = 10,
                metric: str = "intersection",
                top_fraction: float = 0.1) -> float:
    """How much the request distribution moves between windows (0..1).

    ``metric="intersection"`` (default): 1 − mean histogram
    intersection of consecutive windows' key distributions — robust to
    sampling noise inside a uniform hot set.  ``metric="jaccard"``:
    1 − mean Jaccard overlap of the top-``top_fraction`` key sets
    (sharper, but noisy when hot keys are near-equally popular).
    """
    if metric not in ("intersection", "jaccard"):
        raise ConfigurationError(f"unknown drift metric {metric!r}")
    if not 0 < top_fraction <= 1:
        raise ConfigurationError("top_fraction must be in (0, 1]")
    counts = window_counts(trace, n_windows)
    if metric == "intersection":
        probs = counts / counts.sum(axis=1, keepdims=True)
        overlaps = np.minimum(probs[:-1], probs[1:]).sum(axis=1)
        return float(1.0 - overlaps.mean())
    k = max(1, int(round(top_fraction * trace.n_keys)))
    tops = [set(_top_keys(c, k).tolist()) for c in counts]
    overlaps = [
        len(a & b) / len(a | b) for a, b in zip(tops, tops[1:])
    ]
    return float(1.0 - np.mean(overlaps))


@dataclass(frozen=True)
class RegretResult:
    """Static-vs-oracle FastMem hit fractions at one capacity."""

    capacity_fraction: float
    static_hit_fraction: float   # requests served fast, global placement
    oracle_hit_fraction: float   # requests served fast, per-window placement
    n_windows: int

    @property
    def regret(self) -> float:
        """Headroom a dynamic tiering system could reclaim (0..1)."""
        if self.oracle_hit_fraction == 0:
            return 0.0
        return max(
            0.0,
            1.0 - self.static_hit_fraction / self.oracle_hit_fraction,
        )


def static_placement_regret(
    trace: Trace,
    capacity_fraction: float = 0.2,
    n_windows: int = 10,
) -> RegretResult:
    """Compare static vs per-window-oracle placement at a byte budget.

    Both placements use the accesses/size weight (MnemoT's ordering);
    the oracle re-computes it within each window, modelling an ideal
    migration system with free moves.
    """
    if not 0 < capacity_fraction <= 1:
        raise ConfigurationError("capacity_fraction must be in (0, 1]")
    counts = window_counts(trace, n_windows)
    sizes = trace.record_sizes
    budget = int(capacity_fraction * sizes.sum())
    total_requests = trace.n_requests

    def mask_for(placement_counts: np.ndarray) -> np.ndarray:
        """Greedy weight-ordered FastMem mask under the byte budget."""
        order = np.argsort(-(placement_counts / sizes), kind="stable")
        csum = np.cumsum(sizes[order])
        n_fit = int(np.searchsorted(csum, budget, side="right"))
        mask = np.zeros(sizes.size, dtype=bool)
        mask[order[:n_fit]] = True
        return mask

    global_counts = counts.sum(axis=0)
    static_mask = mask_for(global_counts)
    static_hits = int(global_counts[static_mask].sum())
    # the oracle migrator re-places per window but keeps the static
    # placement whenever the greedy window fill would do worse — an
    # ideal migrator never loses to staying put
    oracle_hits = sum(
        max(int(c[mask_for(c)].sum()), int(c[static_mask].sum()))
        for c in counts
    )

    return RegretResult(
        capacity_fraction=capacity_fraction,
        static_hit_fraction=static_hits / total_requests,
        oracle_hit_fraction=oracle_hits / total_requests,
        n_windows=n_windows,
    )


@dataclass(frozen=True)
class DriftReport:
    """Drift diagnosis for a workload."""

    workload: str
    drift: float
    regret: RegretResult
    stationary: bool
    drift_threshold: float = 0.5

    @property
    def recommendation(self) -> str:
        """Human-readable guidance on static-placement suitability."""
        if self.drift < self.drift_threshold:
            return (
                f"access pattern is stationary (drift {self.drift:.2f}); "
                "Mnemo's static placement captures the available savings"
            )
        if self.stationary:
            return (
                f"access pattern drifts (drift {self.drift:.2f}) but the "
                f"{self.regret.capacity_fraction:.0%} FastMem budget covers "
                f"the moving hot set ({self.regret.regret:.0%} regret); a "
                "static placement remains adequate at this sizing"
            )
        return (
            f"access pattern drifts (drift {self.drift:.2f}): a static "
            f"placement serves {self.regret.static_hit_fraction:.0%} of "
            f"requests from FastMem vs {self.regret.oracle_hit_fraction:.0%} "
            f"for an ideal migrating tier ({self.regret.regret:.0%} regret) "
            "- consider dynamic tiering or frequent re-profiling"
        )


def analyze_drift(
    trace: Trace,
    capacity_fraction: float = 0.2,
    n_windows: int = 10,
    drift_threshold: float = 0.5,
    regret_threshold: float = 0.15,
) -> DriftReport:
    """Full drift diagnosis with a stationarity verdict."""
    drift = drift_score(trace, n_windows)
    regret = static_placement_regret(trace, capacity_fraction, n_windows)
    stationary = (drift < drift_threshold
                  or regret.regret < regret_threshold)
    return DriftReport(
        workload=trace.name,
        drift=drift,
        regret=regret,
        stationary=stationary,
        drift_threshold=drift_threshold,
    )
