"""The Sensitivity Engine.

"A customized YCSB client, which executes the actual workload itself
... determines the performance baselines for the best case, where all
data is in FastMem, and worst case, where all data is in SlowMem,
including average total runtime and average read and write request
response times" (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import FaultError, ReproError
from repro.kvstore.profiles import EngineProfile
from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import RunResult, YCSBClient
from repro.core.descriptor import WorkloadDescriptor

SystemFactory = Callable[[], HybridMemorySystem]

#: Confidence multiplier applied per analytically synthesised baseline.
ESTIMATED_PENALTY = 0.5
#: Confidence multiplier applied per baseline measured under fault injection.
FAULTY_PENALTY = 0.75


def estimate_counterpart(
    measured: RunResult,
    profile: EngineProfile,
    system: HybridMemorySystem,
    target: str,
) -> RunResult:
    """Synthesize the missing extreme baseline from the measured one.

    Inverts the timing model ``t = cpu + passes * (lat + bytes/bw)`` on
    the node the measurement ran on, recovering the average bytes each
    request touches, then re-evaluates it with the *target* node's
    latency and bandwidth.  LLC hits and measurement noise are not
    modelled — which is exactly why estimated baselines carry a reduced
    :attr:`PerformanceBaselines.confidence`.

    Parameters
    ----------
    measured:
        The surviving extreme measurement.
    profile:
        The engine cost profile both measurements share.
    system:
        The hybrid system the measurement ran against.
    target:
        ``"fast"`` to synthesize the FastMem-only baseline from a
        SlowMem-only measurement, ``"slow"`` for the converse.
    """
    if target not in ("fast", "slow"):
        raise FaultError(f"unknown counterpart target {target!r}")
    src = system.slow if target == "fast" else system.fast
    dst = system.fast if target == "fast" else system.slow

    def _retime(avg_ns: float, is_read: bool, n: int) -> float:
        if n == 0:
            return 0.0
        cpu = profile.cpu_ns(is_read)
        passes = profile.passes(is_read)
        if passes <= 0:
            return avg_ns  # memory-insensitive op: identical on both nodes
        touched = ((avg_ns - cpu) / passes - src.latency_ns) * src.bytes_per_ns
        touched = max(0.0, touched)
        return cpu + passes * (dst.latency_ns + touched / dst.bytes_per_ns)

    est_read = _retime(measured.avg_read_ns, True, measured.n_reads)
    est_write = _retime(measured.avg_write_ns, False, measured.n_writes)
    runtime = (
        measured.n_reads * est_read + measured.n_writes * est_write
    ) / measured.concurrency
    ratio = runtime / measured.runtime_ns if measured.runtime_ns > 0 else 1.0
    percentiles = {
        q: v * ratio for q, v in measured.latency_percentiles_ns.items()
    }
    return RunResult(
        workload=measured.workload,
        engine=measured.engine,
        n_requests=measured.n_requests,
        n_reads=measured.n_reads,
        n_writes=measured.n_writes,
        runtime_ns=runtime,
        avg_read_ns=est_read,
        avg_write_ns=est_write,
        latency_percentiles_ns=percentiles,
        repeats=measured.repeats,
        runtime_std_ns=0.0,
        concurrency=measured.concurrency,
    )


@dataclass(frozen=True)
class PerformanceBaselines:
    """The two extreme-configuration measurements the model is built on.

    ``flags`` records how each side was obtained when anything other
    than a clean measurement produced it: ``"<side>:estimated"`` for an
    analytically synthesised baseline (the measurement failed and
    ``allow_partial`` was set) and ``"<side>:faulty"`` for one measured
    under active fault injection.  :attr:`confidence` folds the flags
    into a single 0..1 figure that reports and advisors surface.
    """

    fast: RunResult  # best case: all data in FastMem
    slow: RunResult  # worst case: all data in SlowMem
    flags: tuple[str, ...] = field(default=())

    @property
    def confidence(self) -> float:
        """Trustworthiness of the baselines, 1.0 = cleanly measured.

        Each synthesised side halves it; each fault-injected side takes
        a quarter off.  Purely multiplicative, so the worst case (one
        side estimated because the other, fault-ridden side was the
        only survivor) compounds.
        """
        c = 1.0
        for flag in self.flags:
            if flag.endswith(":estimated"):
                c *= ESTIMATED_PENALTY
            elif flag.endswith(":faulty"):
                c *= FAULTY_PENALTY
        return c

    @property
    def degraded(self) -> bool:
        """True when anything other than clean measurement produced these."""
        return bool(self.flags)

    @property
    def read_delta_ns(self) -> float:
        """Per-read runtime saving from moving its key to FastMem.

        Expressed as a *runtime contribution* — response-time deltas
        divided by the measurement concurrency — so the telescoped
        estimate stays exact for multi-threaded clients too.
        """
        return (self.slow.read_runtime_contrib_ns
                - self.fast.read_runtime_contrib_ns)

    @property
    def write_delta_ns(self) -> float:
        """Per-write runtime saving from moving its key to FastMem."""
        return (self.slow.write_runtime_contrib_ns
                - self.fast.write_runtime_contrib_ns)

    @property
    def fast_runtime_ns(self) -> float:
        """Best-case total runtime."""
        return self.fast.runtime_ns

    @property
    def slow_runtime_ns(self) -> float:
        """Worst-case total runtime."""
        return self.slow.runtime_ns

    @property
    def throughput_gap(self) -> float:
        """FastMem-only over SlowMem-only throughput (>= 1 normally)."""
        return self.fast.throughput_ops_s / self.slow.throughput_ops_s


class SensitivityEngine:
    """Obtains the real performance baselines by workload execution.

    Parameters
    ----------
    engine_factory:
        The key-value store under test.
    system_factory:
        Builds a fresh hybrid memory system per deployment (default:
        the Table I testbed).
    client:
        The measuring client; defaults to 3 repeats at 1 % noise, as
        the paper reports means over multiple runs.
    cache:
        Optional result cache (a
        :class:`~repro.runner.cache.ResultCache` or a directory path).
        When given, the client is wrapped in a
        :class:`~repro.runner.caching.CachingClient`, so baselines
        already measured — by any process — are recalled bit-identically
        instead of re-executed.
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        system_factory: SystemFactory = HybridMemorySystem.testbed,
        client: YCSBClient | None = None,
        cache=None,
    ):
        self.engine_factory = engine_factory
        self.system_factory = system_factory
        client = client if client is not None else YCSBClient()
        if cache is not None:
            from repro.runner.caching import CachingClient
            client = CachingClient.wrap(client, cache)
        self.client = client

    def measure(
        self, descriptor: WorkloadDescriptor, allow_partial: bool = False,
    ) -> PerformanceBaselines:
        """Execute the workload in both extreme configurations.

        With ``allow_partial=True`` the engine degrades gracefully: if
        one extreme measurement fails (a :class:`~repro.errors.ReproError`
        — e.g. an injected fault or a corrupt cached trace), the missing
        baseline is synthesised from the surviving one via
        :func:`estimate_counterpart` and flagged ``"<side>:estimated"``;
        sides measured under active fault injection are flagged
        ``"<side>:faulty"``.  Both failing still raises.  Without
        ``allow_partial`` any failure propagates unchanged.
        """
        trace = descriptor.to_trace()
        if not allow_partial:
            return self._measure_batch(trace)
        fast_dep = HybridDeployment.all_fast(
            self.engine_factory, self.system_factory(), trace.record_sizes
        )
        slow_dep = HybridDeployment.all_slow(
            self.engine_factory, self.system_factory(), trace.record_sizes
        )
        errors: dict[str, ReproError] = {}
        fast = slow = None
        try:
            fast = self.client.execute(trace, fast_dep)
        except ReproError as exc:
            if not allow_partial:
                raise
            errors["fast"] = exc
        try:
            slow = self.client.execute(trace, slow_dep)
        except ReproError as exc:
            if not allow_partial:
                raise
            errors["slow"] = exc
        if fast is None and slow is None:
            raise FaultError(
                "both extreme baselines failed: "
                f"fast: {errors['fast']}; slow: {errors['slow']}"
            ) from errors["slow"]

        flags = []
        faults = getattr(self.client, "faults", None)
        faults_active = faults is not None and getattr(faults, "active", False)
        for side, result in (("fast", fast), ("slow", slow)):
            if result is not None and faults_active:
                flags.append(f"{side}:faulty")
        if fast is None:
            fast = estimate_counterpart(
                slow, slow_dep.profile, slow_dep.system, target="fast"
            )
            flags.append("fast:estimated")
        if slow is None:
            slow = estimate_counterpart(
                fast, fast_dep.profile, fast_dep.system, target="slow"
            )
            flags.append("slow:estimated")
        return PerformanceBaselines(
            fast=fast, slow=slow, flags=tuple(sorted(flags)),
        )

    def _measure_batch(self, trace) -> PerformanceBaselines:
        """Both extreme baselines in one batch-kernel pass.

        The all-FastMem / all-SlowMem masks go through
        :meth:`~repro.ycsb.client.YCSBClient.execute_placements`, whose
        per-placement fingerprints (and therefore noise streams and any
        cache entries) match the per-deployment path exactly — so the
        baselines are bit-identical to building the two extreme
        deployments and executing each, without loading a single record.
        """
        system = self.system_factory()
        profile = self.engine_factory(system.fast, system.slow).profile
        masks = np.zeros((2, trace.n_keys), dtype=bool)
        masks[0] = True
        fast, slow = self.client.execute_placements(
            trace, masks, profile, system, record_sizes=trace.record_sizes
        )
        faults = getattr(self.client, "faults", None)
        flags = (
            ("fast:faulty", "slow:faulty")
            if faults is not None and getattr(faults, "active", False)
            else ()
        )
        return PerformanceBaselines(fast=fast, slow=slow, flags=flags)

    def drift_between(
        self,
        descriptor: WorkloadDescriptor,
        live_trace,
        thresholds=None,
    ):
        """Compare a live stream against the workload the baselines cover.

        Baselines (and the curve telescoped from them) describe the
        *planning* workload; when production drifts away from it the
        whole pipeline downstream of this engine is stale.  Returns a
        :class:`~repro.guard.drift.WorkloadDriftReport` whose
        ``advice`` says whether to keep the plan, widen its margin, or
        re-run :meth:`measure`.
        """
        from repro.guard.drift import detect_drift  # lazy: avoid an import cycle

        return detect_drift(
            descriptor.to_trace(), live_trace, thresholds=thresholds
        )
