"""The Sensitivity Engine.

"A customized YCSB client, which executes the actual workload itself
... determines the performance baselines for the best case, where all
data is in FastMem, and worst case, where all data is in SlowMem,
including average total runtime and average read and write request
response times" (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import RunResult, YCSBClient
from repro.core.descriptor import WorkloadDescriptor

SystemFactory = Callable[[], HybridMemorySystem]


@dataclass(frozen=True)
class PerformanceBaselines:
    """The two extreme-configuration measurements the model is built on."""

    fast: RunResult  # best case: all data in FastMem
    slow: RunResult  # worst case: all data in SlowMem

    @property
    def read_delta_ns(self) -> float:
        """Per-read runtime saving from moving its key to FastMem.

        Expressed as a *runtime contribution* — response-time deltas
        divided by the measurement concurrency — so the telescoped
        estimate stays exact for multi-threaded clients too.
        """
        return (self.slow.read_runtime_contrib_ns
                - self.fast.read_runtime_contrib_ns)

    @property
    def write_delta_ns(self) -> float:
        """Per-write runtime saving from moving its key to FastMem."""
        return (self.slow.write_runtime_contrib_ns
                - self.fast.write_runtime_contrib_ns)

    @property
    def fast_runtime_ns(self) -> float:
        """Best-case total runtime."""
        return self.fast.runtime_ns

    @property
    def slow_runtime_ns(self) -> float:
        """Worst-case total runtime."""
        return self.slow.runtime_ns

    @property
    def throughput_gap(self) -> float:
        """FastMem-only over SlowMem-only throughput (>= 1 normally)."""
        return self.fast.throughput_ops_s / self.slow.throughput_ops_s


class SensitivityEngine:
    """Obtains the real performance baselines by workload execution.

    Parameters
    ----------
    engine_factory:
        The key-value store under test.
    system_factory:
        Builds a fresh hybrid memory system per deployment (default:
        the Table I testbed).
    client:
        The measuring client; defaults to 3 repeats at 1 % noise, as
        the paper reports means over multiple runs.
    cache:
        Optional result cache (a
        :class:`~repro.runner.cache.ResultCache` or a directory path).
        When given, the client is wrapped in a
        :class:`~repro.runner.caching.CachingClient`, so baselines
        already measured — by any process — are recalled bit-identically
        instead of re-executed.
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        system_factory: SystemFactory = HybridMemorySystem.testbed,
        client: YCSBClient | None = None,
        cache=None,
    ):
        self.engine_factory = engine_factory
        self.system_factory = system_factory
        client = client if client is not None else YCSBClient()
        if cache is not None:
            from repro.runner.caching import CachingClient
            client = CachingClient.wrap(client, cache)
        self.client = client

    def measure(self, descriptor: WorkloadDescriptor) -> PerformanceBaselines:
        """Execute the workload in both extreme configurations."""
        trace = descriptor.to_trace()
        fast_dep = HybridDeployment.all_fast(
            self.engine_factory, self.system_factory(), trace.record_sizes
        )
        slow_dep = HybridDeployment.all_slow(
            self.engine_factory, self.system_factory(), trace.record_sizes
        )
        return PerformanceBaselines(
            fast=self.client.execute(trace, fast_dep),
            slow=self.client.execute(trace, slow_dep),
        )
