"""The Placement Engine.

"Takes the selected key tiering ... and statically places the key-value
pairs to the corresponding FastServer and SlowServer, prior to the
actual workload execution" (Section IV).  Static allocation only — no
dynamic migration, exactly as the paper states.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlacementError
from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.core.estimate import EstimateCurve
from repro.core.slo import SizingChoice


class PlacementEngine:
    """Realises a chosen key tiering as a two-server deployment."""

    def __init__(self, engine_factory: EngineFactory):
        self.engine_factory = engine_factory

    def place(
        self,
        record_sizes: np.ndarray,
        order: np.ndarray,
        n_fast_keys: int,
        system: HybridMemorySystem,
    ) -> HybridDeployment:
        """Deploy with the first *n_fast_keys* of *order* on FastMem.

        Raises
        ------
        PlacementError
            If the prefix does not fit the FastMem node (including
            engine allocation overheads) or the suffix does not fit
            SlowMem.
        """
        record_sizes = np.asarray(record_sizes, dtype=np.int64)
        order = np.asarray(order, dtype=np.int64)
        if order.size != record_sizes.size:
            raise PlacementError("order must cover the whole key space")
        if not 0 <= n_fast_keys <= order.size:
            raise PlacementError(
                f"n_fast_keys must be in [0, {order.size}], got {n_fast_keys}"
            )
        fast_keys = order[:n_fast_keys]
        payload = int(record_sizes[fast_keys].sum())
        if payload > system.fast.capacity_bytes:
            raise PlacementError(
                f"FastMem prefix needs {payload} B payload but the node has "
                f"{system.fast.capacity_bytes} B"
            )
        return HybridDeployment(
            self.engine_factory, system, record_sizes, fast_keys=fast_keys
        )

    def realize(
        self,
        curve: EstimateCurve,
        choice: SizingChoice,
        record_sizes: np.ndarray,
        system: HybridMemorySystem,
    ) -> HybridDeployment:
        """Deploy the configuration selected by an SLO query."""
        if choice.workload != curve.workload:
            raise PlacementError(
                f"choice is for workload {choice.workload!r}, curve for "
                f"{curve.workload!r}"
            )
        return self.place(record_sizes, curve.order, choice.n_fast_keys, system)
