"""Mnemo's report object — everything a profiling run produced."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.units import format_bytes, ns_to_ms
from repro.core.estimate import EstimateCurve
from repro.core.pattern import KeyAccessPattern
from repro.core.sensitivity import PerformanceBaselines
from repro.core.slo import DEFAULT_MAX_SLOWDOWN, SizingChoice, min_cost_for_slowdown


@dataclass(frozen=True)
class MnemoReport:
    """Output of one Mnemo profiling run.

    Bundles the measured baselines, the analyzed access pattern and the
    estimate curve; offers the paper's CSV output and the SLO query.
    """

    workload: str
    engine: str
    baselines: PerformanceBaselines
    pattern: KeyAccessPattern
    curve: EstimateCurve

    @property
    def confidence(self) -> float:
        """Trustworthiness of the recommendation, 1.0 = clean baselines.

        Below 1.0 when a baseline was synthesised from a partial
        measurement or measured under fault injection (see
        :attr:`~repro.core.sensitivity.PerformanceBaselines.confidence`).
        """
        return self.baselines.confidence

    def write_csv(self, path: str | Path) -> Path:
        """The 3-column output file of Section IV (key, estimate, cost)."""
        return self.curve.write_csv(path)

    def choose(
        self, max_slowdown: float = DEFAULT_MAX_SLOWDOWN
    ) -> SizingChoice:
        """Cheapest sizing within *max_slowdown* of FastMem-only."""
        return min_cost_for_slowdown(self.curve, max_slowdown)

    def choose_guarded(
        self,
        max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
        policy=None,
        widen: bool = False,
    ) -> SizingChoice:
        """Confidence-aware sizing: the SLO slack shrinks as trust drops.

        Applies the guard's margin formula (``docs/GUARD.md``): the
        permissible slowdown is divided by a headroom factor that grows
        as :attr:`confidence` falls below 1.0 — so a recommendation
        built on estimated or fault-flagged baselines buys more FastMem
        than the raw SLO asks for.  With clean baselines (and
        ``widen=False``) this is exactly :meth:`choose`.

        Parameters
        ----------
        policy:
            A :class:`~repro.guard.margin.MarginPolicy`; defaults to
            the documented default policy.
        widen:
            Apply the policy's drift widening on top (the drift
            detectors advised ``widen_margin``).
        """
        from repro.guard.margin import DEFAULT_MARGIN_POLICY  # lazy: layering

        policy = policy if policy is not None else DEFAULT_MARGIN_POLICY
        effective = policy.effective_slowdown(
            max_slowdown, self.confidence, widen=widen
        )
        return min_cost_for_slowdown(self.curve, effective)

    def drift_check(
        self,
        trace,
        max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
        n_windows: int = 10,
    ):
        """Diagnose whether this report's sizing survives pattern drift.

        Runs the drift extension at the FastMem budget the SLO choice
        selects (static placement is Mnemo's scope; a drifting hot set
        can invalidate it — see Fig 9's News Feed).  Returns a
        :class:`~repro.core.drift.DriftReport`.
        """
        from repro.core.drift import analyze_drift  # avoid an import cycle

        choice = self.choose(max_slowdown)
        capacity = max(0.01, choice.capacity_ratio)
        return analyze_drift(trace, capacity_fraction=capacity,
                             n_windows=n_windows)

    def to_markdown(
        self,
        slacks: tuple[float, ...] = (0.02, 0.05, 0.10, 0.20),
        curve_points: int = 12,
    ) -> str:
        """A full shareable report in Markdown.

        Contains the baselines, SLO sizing options at several slacks,
        and a sampled view of the estimate curve — what an operator
        would paste into a capacity-planning ticket.
        """
        b = self.baselines
        curve = self.curve
        lines = [
            f"# Mnemo report — `{self.workload}` on `{self.engine}`",
            "",
            f"- pattern mode: `{self.pattern.mode}`",
            f"- requests: {b.slow.n_requests:,} "
            f"({b.slow.n_reads:,} reads / {b.slow.n_writes:,} writes)",
            f"- dataset: {format_bytes(float(curve.fast_bytes[-1]))} across "
            f"{self.pattern.n_keys:,} keys",
            f"- price factor p = {curve.p}",
            "",
            "## Baselines",
            "",
            "| configuration | throughput | runtime |",
            "|---|---|---|",
            f"| FastMem-only | {b.fast.throughput_ops_s:,.0f} ops/s | "
            f"{ns_to_ms(b.fast_runtime_ns):,.1f} ms |",
            f"| SlowMem-only | {b.slow.throughput_ops_s:,.0f} ops/s | "
            f"{ns_to_ms(b.slow_runtime_ns):,.1f} ms |",
            "",
            f"Fast/Slow throughput gap: **{b.throughput_gap:.2f}x**",
            "",
            "## Sizing options",
            "",
            "| max slowdown | FastMem share | memory cost | saving |",
            "|---|---|---|---|",
        ]
        for slack in slacks:
            choice = self.choose(slack)
            lines.append(
                f"| {slack:.0%} | {choice.capacity_ratio:.1%} | "
                f"{choice.cost_factor:.1%} | "
                f"{choice.savings_percent:.0f}% |"
            )
        lines += [
            "",
            "## Estimate curve (sampled)",
            "",
            "| cost factor | est. throughput | est. avg latency |",
            "|---|---|---|",
        ]
        idx = np.unique(
            np.linspace(0, curve.n_keys, curve_points).astype(int)
        )
        thr = curve.throughput_ops_s
        lat = curve.avg_latency_ns
        for i in idx:
            lines.append(
                f"| {curve.cost_factor[i]:.2f} | {thr[i]:,.0f} ops/s | "
                f"{lat[i] / 1000:.1f} us |"
            )
        return "\n".join(lines)

    def write_markdown(self, path: str | Path, **kwargs) -> Path:
        """Write :meth:`to_markdown` to *path*."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown(**kwargs) + "\n")
        return path

    def summary(self) -> str:
        """Human-readable digest of the profiling run."""
        b = self.baselines
        choice = self.choose()
        lines = [
            f"Mnemo report — workload {self.workload!r} on {self.engine}",
            f"  pattern mode        : {self.pattern.mode}",
            f"  requests            : {b.slow.n_requests:,} "
            f"({b.slow.n_reads:,} reads / {b.slow.n_writes:,} writes)",
            f"  dataset             : {format_bytes(self.curve.fast_bytes[-1])} "
            f"across {self.pattern.n_keys:,} keys",
            f"  FastMem-only        : {b.fast.throughput_ops_s:,.0f} ops/s "
            f"({ns_to_ms(b.fast_runtime_ns):,.1f} ms)",
            f"  SlowMem-only        : {b.slow.throughput_ops_s:,.0f} ops/s "
            f"({ns_to_ms(b.slow_runtime_ns):,.1f} ms)",
            f"  throughput gap      : {b.throughput_gap:.2f}x",
            f"  at 10% slowdown SLO : cost factor {choice.cost_factor:.2f} "
            f"({choice.savings_percent:.0f}% memory-cost saving, "
            f"FastMem share {choice.capacity_ratio:.0%})",
        ]
        if b.degraded:
            lines.append(
                f"  confidence          : {self.confidence:.0%} "
                f"(degraded baselines: {', '.join(b.flags)})"
            )
            guarded = self.choose_guarded()
            from repro.guard.margin import DEFAULT_MARGIN_POLICY

            headroom = DEFAULT_MARGIN_POLICY.headroom(self.confidence)
            lines.append(
                f"  guarded sizing      : cost factor "
                f"{guarded.cost_factor:.2f} (FastMem share "
                f"{guarded.capacity_ratio:.0%}) at headroom "
                f"{headroom:.2f}x -> effective SLO {guarded.max_slowdown:.1%}"
            )
        return "\n".join(lines)
