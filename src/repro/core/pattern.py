"""The Pattern Engine.

"Analyzes the request access pattern of the workload, and establishes a
relationship between the keys and requests Req(keys)" (Section IV).

Three tiering orders are supported, matching the deployment scenarios of
Figure 2:

- ``touch`` (stand-alone Mnemo, Fig 2a): keys in the order the workload
  first touches them;
- ``weight`` (MnemoT, Fig 2c / Fig 7): keys by descending placement
  weight = accesses / key-value size, the methodology existing tiering
  solutions use — hot keys first, small keys advantaged;
- ``external`` (Fig 2b): a user-provided ordering from an existing
  generic tiering tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.core.descriptor import WorkloadDescriptor

_MODES = ("touch", "weight", "external")


@dataclass(frozen=True)
class KeyAccessPattern:
    """Req(keys): the per-key request profile plus a tiering order.

    All per-key arrays are indexed by *key id*; ``order`` lists key ids
    in FastMem-allocation priority (first element is placed first).
    """

    mode: str
    order: np.ndarray
    reads_per_key: np.ndarray
    writes_per_key: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        n = self.sizes.size
        for arr_name in ("order", "reads_per_key", "writes_per_key"):
            arr = getattr(self, arr_name)
            if arr.shape != (n,):
                raise ConfigurationError(
                    f"{arr_name} must have one entry per key ({n}), "
                    f"got shape {arr.shape}"
                )
        ordered = np.sort(self.order)
        if not np.array_equal(ordered, np.arange(n)):
            raise ConfigurationError("order must be a permutation of the key space")

    @property
    def n_keys(self) -> int:
        """Size of the key space."""
        return self.sizes.size

    @property
    def accesses_per_key(self) -> np.ndarray:
        """reads + writes per key id."""
        return self.reads_per_key + self.writes_per_key

    def weights(self) -> np.ndarray:
        """MnemoT placement weights: accesses / size, per key id."""
        return self.accesses_per_key / self.sizes

    # -- ordered views (aligned with ``order``) ---------------------------------

    def ordered_reads(self) -> np.ndarray:
        """Reads per key, in tiering order."""
        return self.reads_per_key[self.order]

    def ordered_writes(self) -> np.ndarray:
        """Writes per key, in tiering order."""
        return self.writes_per_key[self.order]

    def ordered_sizes(self) -> np.ndarray:
        """Key-value sizes, in tiering order."""
        return self.sizes[self.order]


class PatternEngine:
    """Builds a :class:`KeyAccessPattern` from a workload descriptor.

    Parameters
    ----------
    mode:
        ``"touch"`` (Mnemo), ``"weight"`` (MnemoT) or ``"external"``.
    """

    def __init__(self, mode: str = "touch"):
        if mode not in _MODES:
            raise ConfigurationError(f"unknown mode {mode!r}; known: {_MODES}")
        self.mode = mode

    def analyze(
        self,
        descriptor: WorkloadDescriptor,
        external_order: np.ndarray | None = None,
    ) -> KeyAccessPattern:
        """Analyze the request access pattern of *descriptor*.

        Parameters
        ----------
        external_order:
            Required (and only accepted) in ``external`` mode: the key
            ordering produced by an existing tiering solution.
        """
        if (external_order is not None) != (self.mode == "external"):
            raise ConfigurationError(
                "external_order must be given exactly when mode='external'"
            )
        trace = descriptor.to_trace()
        reads, writes = trace.per_key_counts()
        sizes = trace.record_sizes

        if self.mode == "touch":
            order = trace.first_touch_order()
        elif self.mode == "weight":
            order = self._weight_order(reads + writes, sizes)
        else:
            order = np.asarray(external_order, dtype=np.int64)

        return KeyAccessPattern(
            mode=self.mode,
            order=order,
            reads_per_key=reads.astype(np.int64),
            writes_per_key=writes.astype(np.int64),
            sizes=sizes,
        )

    @staticmethod
    def _weight_order(accesses: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Descending accesses/size; ties broken by key id (stable).

        This converts any input distribution "to look like zipfian"
        (Section V-A, "Estimate of MnemoT"): hot keys move to the front
        of the allocation order regardless of where they sit in the key
        space.
        """
        weights = accesses / sizes
        # stable sort on negated weights keeps key-id order within ties
        return np.argsort(-weights, kind="stable").astype(np.int64)
