"""Workload-drift detection for recommendation guarding.

A Mnemo recommendation is built from one planning trace; production
workloads do not stand still.  ARMS-style tiering robustness work shows
that the dangerous failure mode is not a bad plan but a *stale* one —
the hot set rotates, objects grow, keys churn, and a placement that was
optimal silently starts missing its SLO.

This module provides streaming detectors that compare a live request
stream against the planning trace's reference profile along three axes:

- **hotness divergence** — Jensen-Shannon (or Kullback-Leibler)
  divergence between the per-key access-mass distributions.  JS is
  symmetric, bounded in ``[0, 1]`` (base-2), and monotone under hot-set
  rotation, which makes threshold selection sane;
- **key churn** — the fraction of the live hot set that was not hot at
  planning time (hot = the top keys carrying ``top_fraction`` of the
  key space);
- **size shift** — relative change of the request-weighted mean object
  size, which moves the capacity a given key prefix actually needs.

Each metric has a *warn* and an *act* threshold
(:class:`DriftThresholds`).  The bundle of signals folds into a
:class:`ReplanAdvice` — ``keep`` / ``widen_margin`` / ``reprofile`` —
which is what the closed guard loop (:mod:`repro.guard.loop`) and the
``mnemo guard`` CLI act on.

Unlike :mod:`repro.core.drift` — which diagnoses *intra-trace* drift
(does the hot set move within one trace?) — this module compares *two*
observations of a workload: the one the plan was built on and the one
production is serving now.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, GuardError
from repro.ycsb.workload import Trace

#: Smoothing mass added to empty bins before a KL ratio (keeps KL finite
#: when the live stream touches a key the reference never saw).
KL_EPSILON = 1e-12


def _as_probs(mass: np.ndarray) -> np.ndarray:
    """Normalise a non-negative mass vector to a probability vector."""
    mass = np.asarray(mass, dtype=np.float64)
    if mass.ndim != 1 or mass.size == 0:
        raise ConfigurationError("access mass must be a non-empty 1-D array")
    if (mass < 0).any():
        raise ConfigurationError("access mass must be non-negative")
    total = mass.sum()
    if total <= 0:
        raise ConfigurationError("access mass is all zero")
    return mass / total


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback-Leibler divergence ``KL(p || q)`` in bits.

    Both inputs are access-mass vectors over the same key space; they
    are normalised internally.  Zero bins of *q* are smoothed with
    :data:`KL_EPSILON` so the divergence stays finite when the live
    stream concentrates on keys the reference barely touched.
    """
    p = _as_probs(p)
    q = _as_probs(q)
    if p.shape != q.shape:
        raise GuardError(
            f"distributions cover different key spaces: {p.size} vs {q.size}"
        )
    q = np.maximum(q, KL_EPSILON)
    mask = p > 0
    return float(np.sum(p[mask] * np.log2(p[mask] / q[mask])))


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence in bits — symmetric, bounded in [0, 1].

    ``JS(p, q) = KL(p || m)/2 + KL(q || m)/2`` with ``m = (p + q)/2``.
    Zero for identical distributions, 1 for disjoint supports.
    """
    p = _as_probs(p)
    q = _as_probs(q)
    if p.shape != q.shape:
        raise GuardError(
            f"distributions cover different key spaces: {p.size} vs {q.size}"
        )
    m = 0.5 * (p + q)

    def _kl_to_mid(a: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / m[mask])))

    return 0.5 * _kl_to_mid(p) + 0.5 * _kl_to_mid(q)


def hot_set_churn(
    ref_mass: np.ndarray, live_mass: np.ndarray, top_fraction: float = 0.1,
) -> float:
    """Fraction of the live hot set that was not hot at planning time.

    The hot set is the ``top_fraction`` of keys by access mass (ties
    broken by key id, so the metric is deterministic).  0 means the hot
    keys are exactly the planned ones; 1 means a complete rotation.
    """
    if not 0 < top_fraction <= 1:
        raise ConfigurationError(
            f"top_fraction must be in (0, 1], got {top_fraction}"
        )
    ref_mass = np.asarray(ref_mass, dtype=np.float64)
    live_mass = np.asarray(live_mass, dtype=np.float64)
    if ref_mass.shape != live_mass.shape:
        raise GuardError(
            "reference and live mass cover different key spaces: "
            f"{ref_mass.size} vs {live_mass.size}"
        )
    k = max(1, int(round(top_fraction * ref_mass.size)))
    ref_top = set(np.argsort(-ref_mass, kind="stable")[:k].tolist())
    live_top = np.argsort(-live_mass, kind="stable")[:k]
    stayed = sum(1 for key in live_top.tolist() if key in ref_top)
    return 1.0 - stayed / k


def size_shift(ref_mean_bytes: float, live_mean_bytes: float) -> float:
    """Relative change of the request-weighted mean object size."""
    if ref_mean_bytes <= 0:
        raise ConfigurationError(
            f"reference mean size must be positive, got {ref_mean_bytes}"
        )
    return abs(live_mean_bytes - ref_mean_bytes) / ref_mean_bytes


def rotate_hot_set(trace: Trace, shift: int) -> Trace:
    """A copy of *trace* with every key id rotated by *shift* (mod n).

    The canonical drift stressor: the request histogram is rolled
    through the key space, so keys that were hot at planning time go
    cold and previously cold keys inherit their load.  Record sizes
    stay keyed by id, so a size-heterogeneous dataset also shifts its
    request-weighted mean size.
    """
    n = trace.n_keys
    return Trace(
        name=f"{trace.name}+rot{shift % n}",
        keys=(trace.keys + int(shift)) % n,
        is_read=trace.is_read,
        record_sizes=trace.record_sizes,
    )


@dataclass(frozen=True)
class DriftThresholds:
    """Warn/act thresholds for the three drift metrics.

    The defaults are calibrated on the Table III workloads: a hotspot
    workload resampled with a fresh seed stays below every warn level,
    while rotating its hot set by its own width trips every act level.
    """

    divergence_warn: float = 0.05
    divergence_act: float = 0.20
    churn_warn: float = 0.10
    churn_act: float = 0.40
    size_warn: float = 0.10
    size_act: float = 0.25

    def __post_init__(self) -> None:
        for metric in ("divergence", "churn", "size"):
            warn = getattr(self, f"{metric}_warn")
            act = getattr(self, f"{metric}_act")
            if not 0 <= warn <= act:
                raise ConfigurationError(
                    f"{metric} thresholds must satisfy 0 <= warn <= act, "
                    f"got warn={warn} act={act}"
                )


@dataclass(frozen=True)
class DriftSignal:
    """One drift metric's value against its warn/act thresholds."""

    metric: str
    value: float
    warn: float
    act: float

    @property
    def level(self) -> str:
        """``"ok"``, ``"warn"`` or ``"act"``."""
        if self.value >= self.act:
            return "act"
        if self.value >= self.warn:
            return "warn"
        return "ok"

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.metric:<12} {self.value:.3f} "
            f"(warn {self.warn:.2f} / act {self.act:.2f}) -> {self.level}"
        )


@dataclass(frozen=True)
class ReplanAdvice:
    """What the operator (or the closed loop) should do about the plan.

    ``action`` is one of

    - ``"keep"`` — the live workload matches the planning trace; the
      recommendation stands;
    - ``"widen_margin"`` — drift is noticeable but moderate: keep the
      placement, but tighten the effective SLO slack
      (:class:`repro.guard.margin.MarginPolicy`) so the plan carries
      headroom against further movement;
    - ``"reprofile"`` — the live workload no longer resembles the
      planning trace; re-run the full profiling pipeline.
    """

    action: str
    reason: str
    signals: tuple[DriftSignal, ...] = field(default=())

    @property
    def keep(self) -> bool:
        """True when no intervention is advised."""
        return self.action == "keep"


@dataclass(frozen=True)
class WorkloadDriftReport:
    """Drift diagnosis of a live stream against a planning reference."""

    workload: str
    signals: tuple[DriftSignal, ...]
    n_live_requests: int

    @property
    def level(self) -> str:
        """The worst signal level: ``"ok"``, ``"warn"`` or ``"act"``."""
        levels = [s.level for s in self.signals]
        if "act" in levels:
            return "act"
        if "warn" in levels:
            return "warn"
        return "ok"

    @property
    def advice(self) -> ReplanAdvice:
        """The replanning action the signal bundle implies."""
        tripped = [s for s in self.signals if s.level != "ok"]
        if self.level == "act":
            worst = max(tripped, key=lambda s: s.value / s.act)
            return ReplanAdvice(
                action="reprofile",
                reason=(
                    f"{worst.metric} {worst.value:.3f} crossed its act "
                    f"threshold {worst.act:.2f}; the planning trace no "
                    "longer describes the live workload"
                ),
                signals=self.signals,
            )
        if self.level == "warn":
            names = ", ".join(s.metric for s in tripped)
            return ReplanAdvice(
                action="widen_margin",
                reason=(
                    f"{names} above warn level: keep the placement but "
                    "carry extra SLO headroom against further drift"
                ),
                signals=self.signals,
            )
        return ReplanAdvice(
            action="keep",
            reason="live workload matches the planning trace",
            signals=self.signals,
        )

    def lines(self) -> list[str]:
        """Human-readable signal table plus the advice."""
        out = [s.describe() for s in self.signals]
        advice = self.advice
        out.append(f"advice: {advice.action} ({advice.reason})")
        return out


class DriftDetector:
    """Streaming drift detector over a planning reference.

    Feed it the live request stream in chunks (:meth:`observe` /
    :meth:`observe_trace`) — it accumulates per-key access mass and
    size mass incrementally, so a day's worth of requests can be
    checked without materialising them as one trace.  :meth:`report`
    compares the accumulated live profile against the reference.

    Parameters
    ----------
    reference:
        The planning trace (or any trace over the same key space).
    thresholds:
        Warn/act levels; defaults to :class:`DriftThresholds`.
    top_fraction:
        Hot-set width for the churn metric.
    """

    def __init__(
        self,
        reference: Trace,
        thresholds: DriftThresholds | None = None,
        top_fraction: float = 0.1,
    ):
        if not 0 < top_fraction <= 1:
            raise ConfigurationError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        self.thresholds = thresholds if thresholds is not None else DriftThresholds()
        self.top_fraction = top_fraction
        self.workload = reference.name
        self.n_keys = reference.n_keys
        self._ref_sizes = reference.record_sizes
        self._ref_mass = np.bincount(
            reference.keys, minlength=self.n_keys
        ).astype(np.float64)
        self._ref_mean_size = float(
            reference.record_sizes[reference.keys].mean()
        )
        self._live_mass = np.zeros(self.n_keys, dtype=np.float64)
        self._live_size_sum = 0.0
        self._live_requests = 0

    # -- streaming ingestion ------------------------------------------------------

    def observe(
        self, keys: np.ndarray, sizes: np.ndarray | None = None,
    ) -> "DriftDetector":
        """Account a chunk of live requests; returns self for chaining.

        Parameters
        ----------
        keys:
            Key ids of the chunk's requests (dense in the reference's
            key space).
        sizes:
            Optional per-*request* object sizes; defaults to the
            reference dataset's record sizes for the given keys, so a
            stream of bare key ids still feeds the size-shift metric.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ConfigurationError("keys must be a 1-D array")
        if keys.size == 0:
            return self
        if keys.min() < 0 or keys.max() >= self.n_keys:
            raise GuardError(
                f"live stream references keys outside the reference key "
                f"space [0, {self.n_keys})"
            )
        if sizes is None:
            sizes = self._ref_sizes[keys]
        else:
            sizes = np.asarray(sizes, dtype=np.float64)
            if sizes.shape != keys.shape:
                raise ConfigurationError("sizes must align with keys")
        self._live_mass += np.bincount(keys, minlength=self.n_keys)
        self._live_size_sum += float(sizes.sum())
        self._live_requests += keys.size
        return self

    def observe_trace(self, trace: Trace) -> "DriftDetector":
        """Account a whole live trace (its own record sizes apply)."""
        if trace.n_keys != self.n_keys:
            raise GuardError(
                f"live trace key space ({trace.n_keys}) does not match "
                f"the reference ({self.n_keys})"
            )
        return self.observe(trace.keys, trace.record_sizes[trace.keys])

    # -- diagnosis ----------------------------------------------------------------

    @property
    def n_observed(self) -> int:
        """Live requests accounted so far."""
        return self._live_requests

    def report(self) -> WorkloadDriftReport:
        """Compare the accumulated live profile against the reference."""
        if self._live_requests == 0:
            raise GuardError("no live requests observed yet")
        t = self.thresholds
        live_mean = self._live_size_sum / self._live_requests
        signals = (
            DriftSignal(
                metric="divergence",
                value=js_divergence(self._ref_mass, self._live_mass),
                warn=t.divergence_warn,
                act=t.divergence_act,
            ),
            DriftSignal(
                metric="churn",
                value=hot_set_churn(
                    self._ref_mass, self._live_mass, self.top_fraction
                ),
                warn=t.churn_warn,
                act=t.churn_act,
            ),
            DriftSignal(
                metric="size_shift",
                value=size_shift(self._ref_mean_size, live_mean),
                warn=t.size_warn,
                act=t.size_act,
            ),
        )
        return WorkloadDriftReport(
            workload=self.workload,
            signals=signals,
            n_live_requests=self._live_requests,
        )


def detect_drift(
    reference: Trace,
    live: Trace,
    thresholds: DriftThresholds | None = None,
    top_fraction: float = 0.1,
) -> WorkloadDriftReport:
    """One-shot drift diagnosis of a live trace against a reference."""
    detector = DriftDetector(
        reference, thresholds=thresholds, top_fraction=top_fraction
    )
    return detector.observe_trace(live).report()
