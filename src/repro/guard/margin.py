"""Confidence-aware SLO safety margins.

PR 2's resilient pipeline can hand the Estimate Engine *degraded*
baselines — one side synthesised analytically after a failed
measurement, or measured under active fault injection
(:attr:`repro.core.sensitivity.PerformanceBaselines.confidence`).  A
recommendation built on such baselines is still useful, but trusting it
with the full SLO slack over-promises: the analytic synthesis ignores
LLC effects and noise, and fault-ridden measurements skew the per-request
deltas the whole curve telescopes from.

The fix is a *headroom factor*: scale the permissible slowdown down as
confidence drops, so a low-confidence plan buys more FastMem than the
raw SLO asks for.  The formula::

    headroom(c)            = min(max_headroom, 1 + alpha * (1 - c))
    effective_slowdown(s,c) = s / headroom(c)

With the default ``alpha = 1``: clean baselines (c = 1.0) keep the full
slack; one estimated side (c = 0.5) halves it at ``headroom = 1.5``
(10 % SLO -> 6.7 % effective); the worst compound degradation tightens
further, capped at ``max_headroom``.  A drift warning from
:mod:`repro.guard.drift` applies the same machinery through
``drift_extra`` — headroom against workload movement instead of
measurement doubt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MarginPolicy:
    """How much SLO slack to surrender per unit of lost confidence.

    Parameters
    ----------
    alpha:
        Headroom grown per unit of lost confidence (>= 0; 0 disables
        the margin entirely).
    max_headroom:
        Cap on the headroom factor, so a near-zero-confidence report
        still yields a usable (if conservative) sizing.
    drift_extra:
        Additional multiplicative headroom applied when the drift
        detectors advise ``widen_margin``.
    """

    alpha: float = 1.0
    max_headroom: float = 4.0
    drift_extra: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")
        if self.max_headroom < 1:
            raise ConfigurationError(
                f"max_headroom must be >= 1, got {self.max_headroom}"
            )
        if self.drift_extra < 0:
            raise ConfigurationError(
                f"drift_extra must be >= 0, got {self.drift_extra}"
            )

    def headroom(self, confidence: float, widen: bool = False) -> float:
        """The SLO headroom factor for a given baseline confidence.

        Parameters
        ----------
        confidence:
            :attr:`~repro.core.sensitivity.PerformanceBaselines.confidence`
            (1.0 = cleanly measured).
        widen:
            Apply the ``drift_extra`` widening on top (the drift
            detectors advised ``widen_margin``).
        """
        if not 0 <= confidence <= 1:
            raise ConfigurationError(
                f"confidence must be in [0, 1], got {confidence}"
            )
        h = 1.0 + self.alpha * (1.0 - confidence)
        if widen:
            h *= 1.0 + self.drift_extra
        return min(self.max_headroom, h)

    def effective_slowdown(
        self, max_slowdown: float, confidence: float, widen: bool = False,
    ) -> float:
        """The tightened slowdown budget the sizing query should use."""
        if not 0 <= max_slowdown < 1:
            raise ConfigurationError(
                f"max_slowdown must be in [0, 1), got {max_slowdown}"
            )
        return max_slowdown / self.headroom(confidence, widen=widen)


#: The policy reports and the guard loop use unless told otherwise.
DEFAULT_MARGIN_POLICY = MarginPolicy()
