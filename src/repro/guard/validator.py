"""Recommendation validation: predicted vs. simulated ground truth.

Mnemo's output is an *analytical prediction* — the estimate curve
telescopes two baseline measurements across every possible split.  The
paper validates the model offline (Fig 5 / Fig 8); production use needs
the same check *per recommendation*, automatically, before a sizing is
acted on.

:class:`RecommendationValidator` replays the chosen FastMem:SlowMem
split — plus its ± one-increment neighbours — through the full simulator
(real deployments, the real measuring client) and compares the curve's
predicted throughput and latency against the simulated ground truth,
point by point, against a configurable :class:`ErrorBudget`.  The result
is a :class:`ValidationVerdict`:

- ``pass`` — every replayed point is inside the budget;
- ``marginal`` — inside the budget but beyond its comfort fraction;
- ``reject`` — at least one point violates the budget; the verdict
  names the violating metric.

A rejected recommendation triggers :meth:`~RecommendationValidator.find_fallback`
— an outward search along the curve for the nearest split that *does*
validate (always ending at the all-FastMem safe harbour).

Verdicts are deterministic — the simulator's noise is a pure function of
the experiment fingerprint — and cacheable: with a
:class:`~repro.runner.cache.ResultCache` attached, a verdict is stored
under a fingerprint covering the live trace, the curve, the probed
splits, the budget, and the measuring client, so re-validating the same
recommendation is a pure cache hit with a bit-identical verdict.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, GuardError
from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.runner.cache import ResultCache, ensure_cache
from repro.runner.fingerprint import (
    SHORT_DIGEST_LEN,
    array_digest,
    canonicalize,
    client_fingerprint,
    digest,
    system_fingerprint,
    trace_fingerprint,
)
from repro.ycsb.client import YCSBClient
from repro.ycsb.workload import Trace
from repro.core.estimate import EstimateCurve
from repro.core.slo import SizingChoice, choice_at

#: Default fraction of the key space one fallback increment spans.
DEFAULT_STEP_FRACTION = 0.05

#: Default bound on fallback probes before jumping to the safe harbour.
DEFAULT_MAX_PROBES = 8


@dataclass(frozen=True)
class ErrorBudget:
    """Permissible prediction error for a recommendation to be trusted.

    Parameters
    ----------
    throughput_pct / latency_pct:
        Maximum ``|simulated - predicted| / simulated`` error, percent.
        The paper reports <= 8 % model error on the Table III workloads
        (Fig 8a), so the 10 % defaults allow normal model error plus a
        little noise while catching genuinely stale plans.
    marginal_fraction:
        Errors inside the budget but above this fraction of it yield a
        ``marginal`` verdict — a warning, not a rejection.
    """

    throughput_pct: float = 10.0
    latency_pct: float = 10.0
    marginal_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.throughput_pct <= 0 or self.latency_pct <= 0:
            raise ConfigurationError(
                "error budgets must be positive, got "
                f"throughput={self.throughput_pct} latency={self.latency_pct}"
            )
        if not 0 < self.marginal_fraction <= 1:
            raise ConfigurationError(
                f"marginal_fraction must be in (0, 1], got "
                f"{self.marginal_fraction}"
            )


@dataclass(frozen=True)
class PointCheck:
    """Predicted vs. simulated metrics at one replayed split."""

    n_fast_keys: int
    predicted_throughput_ops_s: float
    simulated_throughput_ops_s: float
    throughput_error_pct: float
    predicted_latency_ns: float
    simulated_latency_ns: float
    latency_error_pct: float


@dataclass(frozen=True)
class ValidationVerdict:
    """The outcome of validating one recommendation.

    ``status`` is ``"pass"``, ``"marginal"`` or ``"reject"``;
    ``violating_metric`` names the budget a rejected verdict broke
    (``"throughput"`` or ``"latency"``, None otherwise).  The verdict
    carries every replayed :class:`PointCheck` so reports can show the
    full neighbourhood, and the fingerprint it was computed (and cached)
    under.
    """

    status: str
    workload: str
    engine: str
    n_fast_keys: int
    max_throughput_error_pct: float
    max_latency_error_pct: float
    violating_metric: str | None
    budget: ErrorBudget
    points: tuple[PointCheck, ...]
    fingerprint: str

    @property
    def ok(self) -> bool:
        """True unless the verdict is a rejection."""
        return self.status != "reject"

    @property
    def passed(self) -> bool:
        """True only for a clean pass (no marginal warning)."""
        return self.status == "pass"

    def describe(self) -> str:
        """One-line human-readable rendering."""
        body = (
            f"{self.status.upper()} at {self.n_fast_keys} fast keys: "
            f"throughput err {self.max_throughput_error_pct:.1f}% "
            f"(budget {self.budget.throughput_pct:.0f}%), "
            f"latency err {self.max_latency_error_pct:.1f}% "
            f"(budget {self.budget.latency_pct:.0f}%)"
        )
        if self.violating_metric:
            body += f" — violated: {self.violating_metric}"
        return body

    # -- cache (de)serialisation --------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-serialisable dict (the verdict-cache payload)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "ValidationVerdict":
        """Rebuild a verdict from :meth:`to_payload` output."""
        try:
            body = dict(payload)
            body["budget"] = ErrorBudget(**body["budget"])
            body["points"] = tuple(
                PointCheck(**p) for p in body["points"]
            )
            return cls(**body)
        except (KeyError, TypeError, ValueError) as exc:
            raise GuardError(f"malformed verdict payload: {exc}") from exc


@dataclass(frozen=True)
class FallbackResult:
    """Outcome of the nearest-validating-split search after a rejection."""

    choice: SizingChoice
    verdict: ValidationVerdict
    probed: tuple[int, ...] = field(default=())

    @property
    def n_fast_keys(self) -> int:
        """The validating split the search settled on."""
        return self.verdict.n_fast_keys


class RecommendationValidator:
    """Replays recommended splits through the simulator and judges them.

    Parameters
    ----------
    engine_factory:
        The key-value store under test (must match the profiled one for
        the prediction to be comparable).
    system_factory:
        Builds fresh hybrid memory systems per replayed point.
    client:
        The measuring client; defaults to the profiling default (3
        repeats, 1 % noise).  Must be fingerprintable (integer seed or
        None) for verdicts to be cacheable.
    budget:
        The :class:`ErrorBudget` verdicts are judged against.
    cache:
        Optional verdict cache (a
        :class:`~repro.runner.cache.ResultCache` or directory path);
        verdicts are stored under the existing content-addressed
        fingerprint scheme, so re-validation is a bit-identical replay.
    step_fraction:
        Width of one validation/fallback increment as a fraction of the
        key space (the ± neighbours sit one increment away).
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        system_factory: Callable[[], HybridMemorySystem] = HybridMemorySystem.testbed,
        client: YCSBClient | None = None,
        budget: ErrorBudget | None = None,
        cache: ResultCache | str | None = None,
        step_fraction: float = DEFAULT_STEP_FRACTION,
    ):
        if not 0 < step_fraction <= 1:
            raise ConfigurationError(
                f"step_fraction must be in (0, 1], got {step_fraction}"
            )
        self.engine_factory = engine_factory
        self.system_factory = system_factory
        self.client = client if client is not None else YCSBClient()
        self.budget = budget if budget is not None else ErrorBudget()
        self.cache = ensure_cache(cache)
        self.step_fraction = step_fraction
        self.cache_hits = 0
        self.cache_misses = 0
        self._profile_memo = None

    # -- geometry -----------------------------------------------------------------

    def step(self, n_keys: int) -> int:
        """One validation increment, in keys (>= 1)."""
        return max(1, int(round(self.step_fraction * n_keys)))

    def _neighbourhood(self, n: int, n_keys: int) -> list[int]:
        """The chosen split plus its ± one-increment neighbours."""
        step = self.step(n_keys)
        points = {
            int(np.clip(n, 0, n_keys)),
            int(np.clip(n - step, 0, n_keys)),
            int(np.clip(n + step, 0, n_keys)),
        }
        return sorted(points)

    # -- fingerprinting -----------------------------------------------------------

    def _profile(self):
        """The engine's cost profile (built once, lazily)."""
        if self._profile_memo is None:
            system = self.system_factory()
            self._profile_memo = self.engine_factory(
                system.fast, system.slow
            ).profile
        return self._profile_memo

    def verdict_fingerprint(
        self, curve: EstimateCurve, trace: Trace, checked: list[int],
    ) -> str:
        """Content digest covering everything that determines a verdict."""
        body = {
            "trace": trace_fingerprint(trace),
            "order": array_digest(curve.order)[:SHORT_DIGEST_LEN],
            "runtime": array_digest(curve.runtime_ns)[:SHORT_DIGEST_LEN],
            "n_requests": curve.n_requests,
            "checked": list(checked),
            "budget": canonicalize(self.budget),
            "engine": canonicalize(self._profile()),
            "system": system_fingerprint(self.system_factory()),
            "client": client_fingerprint(self.client),
        }
        return digest(body)[:SHORT_DIGEST_LEN]

    # -- validation ---------------------------------------------------------------

    def _replay_batch(
        self, curve: EstimateCurve, trace: Trace, checked: list[int],
    ) -> list[PointCheck]:
        """Simulate every checked split in one batch-kernel pass.

        The placement masks are exactly what the per-point deployments
        would carry (the curve-order prefixes), so each simulated result
        is bit-identical to a full per-deployment replay — at the cost
        of one kernel gather instead of ``len(checked)`` deployment
        constructions and executes.
        """
        system = self.system_factory()
        masks = np.zeros((len(checked), trace.n_keys), dtype=bool)
        for i, n in enumerate(checked):
            masks[i, curve.order[:n]] = True
        results = self.client.execute_placements(
            trace, masks, self._profile(), system,
            record_sizes=trace.record_sizes,
        )
        return [
            self._compare(curve, n, simulated)
            for n, simulated in zip(checked, results)
        ]

    def _replay(self, curve: EstimateCurve, trace: Trace, n: int) -> PointCheck:
        """Simulate the split at prefix *n* and compare to the prediction."""
        deployment = HybridDeployment(
            self.engine_factory,
            self.system_factory(),
            trace.record_sizes,
            fast_keys=curve.order[:n],
        )
        simulated = self.client.execute(trace, deployment)
        return self._compare(curve, n, simulated)

    def _compare(
        self, curve: EstimateCurve, n: int, simulated,
    ) -> PointCheck:
        """Fold one simulated split into a prediction-vs-truth check."""
        predicted = curve.point_for_keys(n)
        sim_thr = simulated.throughput_ops_s
        sim_lat = simulated.avg_latency_ns
        thr_err = abs(sim_thr - predicted["throughput_ops_s"]) / sim_thr * 100.0
        lat_err = abs(sim_lat - predicted["avg_latency_ns"]) / sim_lat * 100.0
        return PointCheck(
            n_fast_keys=int(n),
            predicted_throughput_ops_s=float(predicted["throughput_ops_s"]),
            simulated_throughput_ops_s=float(sim_thr),
            throughput_error_pct=float(thr_err),
            predicted_latency_ns=float(predicted["avg_latency_ns"]),
            simulated_latency_ns=float(sim_lat),
            latency_error_pct=float(lat_err),
        )

    def _judge(
        self,
        curve: EstimateCurve,
        n: int,
        points: list[PointCheck],
        fingerprint: str,
    ) -> ValidationVerdict:
        """Fold replayed points into a verdict against the budget."""
        b = self.budget
        max_thr = max(p.throughput_error_pct for p in points)
        max_lat = max(p.latency_error_pct for p in points)
        thr_ratio = max_thr / b.throughput_pct
        lat_ratio = max_lat / b.latency_pct
        worst = max(thr_ratio, lat_ratio)
        if worst > 1.0:
            status = "reject"
            violating = "throughput" if thr_ratio >= lat_ratio else "latency"
        elif worst > b.marginal_fraction:
            status, violating = "marginal", None
        else:
            status, violating = "pass", None
        return ValidationVerdict(
            status=status,
            workload=curve.workload,
            engine=curve.engine,
            n_fast_keys=int(n),
            max_throughput_error_pct=float(max_thr),
            max_latency_error_pct=float(max_lat),
            violating_metric=violating,
            budget=b,
            points=tuple(points),
            fingerprint=fingerprint,
        )

    def validate(
        self,
        curve: EstimateCurve,
        choice: SizingChoice | int,
        trace: Trace,
    ) -> ValidationVerdict:
        """Validate a recommendation against simulated ground truth.

        Parameters
        ----------
        curve:
            The estimate curve the recommendation came from.
        choice:
            The selected sizing (or a bare prefix length).
        trace:
            The trace to replay — the planning trace for a model check,
            or a *live* trace to test whether the plan survives what
            production is actually serving.
        """
        n = choice if isinstance(choice, int) else choice.n_fast_keys
        if not 0 <= n <= curve.n_keys:
            raise GuardError(
                f"split {n} outside the curve's [0, {curve.n_keys}] range"
            )
        if trace.n_keys != curve.n_keys:
            raise GuardError(
                f"trace key space ({trace.n_keys}) does not match the "
                f"curve ({curve.n_keys})"
            )
        checked = self._neighbourhood(n, curve.n_keys)
        fingerprint = None
        if self.cache is not None and not isinstance(
            self.client.seed, np.random.Generator
        ):
            fingerprint = self.verdict_fingerprint(curve, trace, checked)
            payload = self.cache.get_verdict(fingerprint)
            if payload is not None:
                self.cache_hits += 1
                return ValidationVerdict.from_payload(payload)
            self.cache_misses += 1
        points = self._replay_batch(curve, trace, checked)
        verdict = self._judge(curve, n, points, fingerprint or "")
        if fingerprint is not None:
            self.cache.put_verdict(fingerprint, verdict.to_payload())
        return verdict

    # -- fallback search ----------------------------------------------------------

    def find_fallback(
        self,
        curve: EstimateCurve,
        trace: Trace,
        start: SizingChoice | int,
        max_slowdown: float | None = None,
        max_probes: int = DEFAULT_MAX_PROBES,
    ) -> FallbackResult:
        """Search outward from a rejected split for one that validates.

        Candidates are probed nearest-first (+1, -1, +2, -2, ...
        increments from the rejected split — FastMem-richer first at
        every distance, since under-delivery is the common rejection
        cause), ending with the all-FastMem safe harbour.  The first
        candidate whose verdict is not a rejection wins.

        Raises :class:`~repro.errors.GuardError` when every candidate —
        including all-FastMem — fails, which means the workload itself
        changed beyond what any split of this curve can serve
        (re-profiling is the only fix).
        """
        if max_probes < 1:
            raise ConfigurationError(
                f"max_probes must be >= 1, got {max_probes}"
            )
        n0 = start if isinstance(start, int) else start.n_fast_keys
        slo = (
            max_slowdown
            if max_slowdown is not None
            else (start.max_slowdown if isinstance(start, SizingChoice) else 0.10)
        )
        step = self.step(curve.n_keys)
        candidates: list[int] = []
        for distance in range(1, max_probes + 1):
            for signed in (n0 + distance * step, n0 - distance * step):
                k = int(np.clip(signed, 0, curve.n_keys))
                if k != n0 and k not in candidates:
                    candidates.append(k)
        if curve.n_keys not in candidates:
            candidates.append(curve.n_keys)  # the safe harbour
        probed: list[int] = []
        for k in candidates:
            probed.append(k)
            verdict = self.validate(curve, k, trace)
            if verdict.ok:
                return FallbackResult(
                    choice=choice_at(curve, k, max_slowdown=slo),
                    verdict=verdict,
                    probed=tuple(probed),
                )
        raise GuardError(
            f"no split validates (probed {probed}): the live workload has "
            "moved beyond this curve — re-profile instead of re-sizing"
        )

    def validate_or_fallback(
        self,
        curve: EstimateCurve,
        choice: SizingChoice,
        trace: Trace,
        max_probes: int = DEFAULT_MAX_PROBES,
    ) -> tuple[ValidationVerdict, FallbackResult | None]:
        """Validate *choice*; on rejection, search for a validating split.

        Returns ``(verdict, None)`` when the original choice validates,
        or ``(verdict, fallback)`` when it was rejected and the nearest
        validating split was found.
        """
        verdict = self.validate(curve, choice, trace)
        if verdict.ok:
            return verdict, None
        fallback = self.find_fallback(
            curve, trace, choice, max_probes=max_probes
        )
        return verdict, fallback
