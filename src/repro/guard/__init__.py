"""repro.guard — closed-loop SLO guardrails for Mnemo recommendations.

A recommendation is an unguarded analytical prediction until something
checks it.  This package supplies the three cooperating robustness
layers (see ``docs/GUARD.md``):

- :mod:`repro.guard.validator` — replay the chosen split (and its ±
  one-increment neighbours) through the full simulator, compare against
  an error budget, and fall back to the nearest validating split on
  rejection;
- :mod:`repro.guard.drift` — streaming detectors for hotness
  divergence, key churn and object-size shift between the planning
  trace and the live stream, folded into replan advice;
- :mod:`repro.guard.margin` — confidence-aware SLO headroom so
  recommendations built on estimated or fault-flagged baselines (PR 2)
  carry a safety margin;
- :mod:`repro.guard.loop` — the closed loop that runs all three and
  emits CI-friendly exit codes (the ``mnemo guard`` subcommand).
"""

from repro.guard.drift import (
    DriftDetector,
    DriftSignal,
    DriftThresholds,
    ReplanAdvice,
    WorkloadDriftReport,
    detect_drift,
    hot_set_churn,
    js_divergence,
    kl_divergence,
    rotate_hot_set,
    size_shift,
)
from repro.guard.loop import GuardLoop, GuardOutcome
from repro.guard.margin import DEFAULT_MARGIN_POLICY, MarginPolicy
from repro.guard.validator import (
    ErrorBudget,
    FallbackResult,
    PointCheck,
    RecommendationValidator,
    ValidationVerdict,
)

__all__ = [
    "DriftDetector",
    "DriftSignal",
    "DriftThresholds",
    "ReplanAdvice",
    "WorkloadDriftReport",
    "detect_drift",
    "hot_set_churn",
    "js_divergence",
    "kl_divergence",
    "rotate_hot_set",
    "size_shift",
    "GuardLoop",
    "GuardOutcome",
    "MarginPolicy",
    "DEFAULT_MARGIN_POLICY",
    "ErrorBudget",
    "FallbackResult",
    "PointCheck",
    "RecommendationValidator",
    "ValidationVerdict",
]
