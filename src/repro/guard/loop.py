"""The closed guard loop: drift -> margin -> validate -> re-plan.

:class:`GuardLoop` is the orchestration layer the ``mnemo guard`` CLI
and CI/cron jobs drive.  Given a profiling report, the planning trace,
and (optionally) a live trace, one :meth:`~GuardLoop.run` call executes
the whole robustness pipeline:

1. **drift** — the live trace is compared against the planning
   reference (:mod:`repro.guard.drift`); the signals fold into a
   :class:`~repro.guard.drift.ReplanAdvice`;
2. **margin** — the SLO slack is tightened by the confidence-aware
   headroom factor (:mod:`repro.guard.margin`): degraded baselines
   (PR 2's fault flags) and a ``widen_margin`` drift advice both shrink
   the effective slowdown budget before the sizing is selected;
3. **validate** — the (guarded) choice is replayed through the full
   simulator against the live trace
   (:class:`~repro.guard.validator.RecommendationValidator`); a
   rejection triggers the fallback search for the nearest split that
   validates.

The result is a :class:`GuardOutcome` whose :attr:`~GuardOutcome.exit_code`
follows CI conventions: 0 = recommendation stands, 1 = warnings
(marginal verdict, widened margin, drift warn), 3 = action needed
(rejection, fallback applied, or re-profiling advised).  Exit code 2 is
reserved for usage errors, matching the CLI's convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.errors import GuardError
from repro.ycsb.workload import Trace
from repro.core.report import MnemoReport
from repro.core.slo import DEFAULT_MAX_SLOWDOWN, SizingChoice
from repro.guard.drift import (
    DriftThresholds,
    ReplanAdvice,
    WorkloadDriftReport,
    detect_drift,
)
from repro.guard.margin import DEFAULT_MARGIN_POLICY, MarginPolicy
from repro.guard.validator import (
    ErrorBudget,
    FallbackResult,
    RecommendationValidator,
    ValidationVerdict,
)


@dataclass(frozen=True)
class GuardOutcome:
    """Everything one guard-loop pass produced.

    Attributes
    ----------
    choice:
        The sizing that should be deployed — the guarded original when
        it validates, the fallback split when it does not.
    verdict:
        The original choice's validation verdict.
    fallback:
        The fallback search result (None when the original validated,
        or when validation was skipped).
    drift:
        The drift report (None when no live trace was supplied).
    advice:
        The replanning advice the drift signals imply (``keep`` when no
        live trace was supplied).
    headroom / effective_slowdown:
        The margin actually applied when selecting the choice.
    """

    choice: SizingChoice
    verdict: ValidationVerdict | None
    fallback: FallbackResult | None
    drift: WorkloadDriftReport | None
    advice: ReplanAdvice
    headroom: float
    effective_slowdown: float

    @property
    def ok(self) -> bool:
        """True when the deployed choice needs no operator attention."""
        return self.exit_code == 0

    @property
    def replanned(self) -> bool:
        """True when the original recommendation was replaced."""
        return self.fallback is not None

    @property
    def exit_code(self) -> int:
        """CI-friendly status: 0 = clean, 1 = warnings, 3 = action."""
        if (
            self.advice.action == "reprofile"
            or self.replanned
            or (self.verdict is not None and not self.verdict.ok)
        ):
            return 3
        if (
            self.advice.action == "widen_margin"
            or self.headroom > 1.0
            or (self.verdict is not None and not self.verdict.passed)
        ):
            return 1
        return 0

    def lines(self) -> list[str]:
        """Human-readable summary of the whole guard pass."""
        out = []
        if self.drift is not None:
            out.extend(self.drift.lines())
        else:
            out.append("drift: not checked (no live trace)")
        out.append(
            f"margin: headroom {self.headroom:.2f}x -> effective SLO "
            f"{self.effective_slowdown:.1%}"
        )
        if self.verdict is not None:
            out.append(f"validation: {self.verdict.describe()}")
        if self.fallback is not None:
            out.append(
                f"fallback: re-planned to {self.fallback.n_fast_keys:,} fast "
                f"keys (cost factor {self.fallback.choice.cost_factor:.2f}, "
                f"probed {len(self.fallback.probed)} splits)"
            )
        out.append(
            f"deploy: {self.choice.n_fast_keys:,} fast keys "
            f"({self.choice.capacity_ratio:.0%} of data, "
            f"cost factor {self.choice.cost_factor:.2f}) "
            f"[exit {self.exit_code}]"
        )
        return out


class GuardLoop:
    """Closed-loop guardrails around one Mnemo recommendation.

    Parameters
    ----------
    mnemo:
        The consultant whose engines and client the loop reuses — the
        validator must measure with the same client configuration the
        baselines were measured with, or model error and configuration
        mismatch would be indistinguishable.
    budget / thresholds / policy:
        The error budget, drift thresholds and margin policy; all
        default to the documented defaults (see ``docs/GUARD.md``).
    cache:
        Optional verdict cache; defaults to the Mnemo's cache when that
        is a caching client, else no caching.
    """

    def __init__(
        self,
        mnemo,
        budget: ErrorBudget | None = None,
        thresholds: DriftThresholds | None = None,
        policy: MarginPolicy | None = None,
        cache=None,
    ):
        if cache is None:
            cache = getattr(mnemo.client, "cache", None)
        self.mnemo = mnemo
        self.thresholds = thresholds if thresholds is not None else DriftThresholds()
        self.policy = policy if policy is not None else DEFAULT_MARGIN_POLICY
        self.validator = RecommendationValidator(
            engine_factory=mnemo.engine_factory,
            system_factory=mnemo.system_factory,
            client=mnemo.client,
            budget=budget,
            cache=cache,
        )

    def run(
        self,
        report: MnemoReport,
        planning_trace: Trace,
        live_trace: Trace | None = None,
        max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
        validate: bool = True,
    ) -> GuardOutcome:
        """One full guard pass over a recommendation.

        Parameters
        ----------
        report:
            The profiling report the recommendation came from.
        planning_trace:
            The trace the report was profiled on (the drift reference
            and the default validation workload).
        live_trace:
            What production is serving now; enables drift detection and
            makes validation replay reality instead of the plan.
        max_slowdown:
            The operator's SLO; the margin policy tightens it before
            the sizing is selected.
        validate:
            Skip simulator replay when False (drift + margin only —
            cheap enough for every cron tick).
        """
        with telemetry.span("guard.run", workload=report.workload):
            drift_report = None
            advice = ReplanAdvice(
                action="keep", reason="no live trace supplied", signals=(),
            )
            if live_trace is not None:
                drift_report = detect_drift(
                    planning_trace, live_trace, thresholds=self.thresholds
                )
                advice = drift_report.advice
                for sig in drift_report.signals:
                    telemetry.gauge(
                        "guard.drift", sig.value, metric=sig.metric,
                    )

            widen = advice.action == "widen_margin"
            confidence = report.confidence
            headroom = self.policy.headroom(confidence, widen=widen)
            effective = self.policy.effective_slowdown(
                max_slowdown, confidence, widen=widen
            )
            telemetry.gauge("guard.headroom", headroom)
            telemetry.gauge("guard.effective_slowdown", effective)
            choice = report.choose(effective)

            verdict = None
            fallback = None
            if validate:
                target = live_trace if live_trace is not None else planning_trace
                try:
                    verdict, fallback = self.validator.validate_or_fallback(
                        report.curve, choice, target
                    )
                except GuardError:
                    if advice.action == "reprofile":
                        # the drift detectors already explained the failure:
                        # no split of this curve serves the moved workload
                        verdict = self.validator.validate(
                            report.curve, choice, target
                        )
                    else:
                        raise
                if fallback is not None:
                    choice = fallback.choice
            if verdict is not None:
                telemetry.count("guard.verdict", status=verdict.status)

            outcome = GuardOutcome(
                choice=choice,
                verdict=verdict,
                fallback=fallback,
                drift=drift_report,
                advice=advice,
                headroom=headroom,
                effective_slowdown=effective,
            )
            telemetry.event(
                "guard.outcome",
                exit_code=outcome.exit_code,
                action=advice.action,
                replanned=outcome.replanned,
            )
        return outcome
