"""Experiment fingerprinting.

Every experiment the runner executes is identified by a SHA-256 digest
over a *canonical* JSON description of everything that determines its
outcome: the workload (spec or concrete trace), the engine's sensitivity
profile, the memory-system parameters, the client settings, and the base
seed.  Two experiments with the same fingerprint are bit-identical, so
the fingerprint doubles as

- the content-addressed key of the on-disk result/trace/hit-mask cache
  (:mod:`repro.runner.cache`), and
- the label from which the client derives its noise seeds — making the
  measured numbers a pure function of the experiment description,
  independent of call order, process, or parallel schedule.

Canonicalisation rules: dataclasses become ``{"__dataclass__": name,
**fields}`` mappings, NumPy arrays are replaced by a digest of their raw
bytes plus dtype/shape, floats are serialised exactly via ``repr``, and
mapping keys are sorted.  The scheme is versioned through the cache's
schema version, so changing it invalidates old entries rather than
silently aliasing them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

#: Digest length (hex chars) used for short fingerprints; 128 bits of a
#: SHA-256 is far beyond collision risk for any realistic sweep.
SHORT_DIGEST_LEN = 32


def canonicalize(obj: Any) -> Any:
    """Reduce *obj* to a deterministic JSON-serialisable structure.

    Handles dataclasses, NumPy arrays and scalars, mappings, sequences
    and plain scalars.  Raises :class:`~repro.errors.ConfigurationError`
    for types with no canonical form (e.g. arbitrary callables), rather
    than falling back to ``repr`` which would not be stable.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # np.float64 subclasses float; coerce so both repr identically
        return {"__float__": repr(float(obj))}
    if isinstance(obj, np.generic):
        return canonicalize(obj.item())
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": array_digest(obj),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {
            "__mapping__": [
                [canonicalize(k), canonicalize(v)]
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
            ]
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(x) for x in obj]
    raise ConfigurationError(
        f"cannot canonicalize {type(obj).__name__!r} for fingerprinting"
    )


def digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of *obj*."""
    payload = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def array_digest(arr: np.ndarray) -> str:
    """SHA-256 hex digest of an array's raw bytes (dtype/shape-tagged)."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.view(np.uint8).data)
    return h.hexdigest()


def trace_fingerprint(trace) -> str:
    """Content digest of a concrete :class:`~repro.ycsb.workload.Trace`."""
    h = hashlib.sha256()
    h.update(trace.name.encode("utf-8"))
    h.update(array_digest(trace.keys).encode())
    h.update(array_digest(trace.is_read).encode())
    h.update(array_digest(trace.record_sizes).encode())
    return h.hexdigest()[:SHORT_DIGEST_LEN]


def workload_fingerprint(workload) -> str:
    """Digest of a workload: a spec canonically, a trace by content.

    Accepts a :class:`~repro.ycsb.workload.WorkloadSpec` (fingerprinted
    from its declarative parameters — cheap, and independent of whether
    the trace was ever materialised) or a concrete
    :class:`~repro.ycsb.workload.Trace` (fingerprinted by content).
    """
    if hasattr(workload, "distribution"):  # WorkloadSpec
        return digest(workload)[:SHORT_DIGEST_LEN]
    return trace_fingerprint(workload)


def system_fingerprint(system) -> dict:
    """Canonical description of a hybrid memory system's parameters."""
    return {
        "fast": {
            "latency_ns": system.fast.latency_ns,
            "bandwidth_gbps": system.fast.bandwidth_gbps,
            "capacity_bytes": system.fast.capacity_bytes,
        },
        "slow": {
            "latency_ns": system.slow.latency_ns,
            "bandwidth_gbps": system.slow.bandwidth_gbps,
            "capacity_bytes": system.slow.capacity_bytes,
        },
        "llc": llc_fingerprint(system.llc),
    }


def llc_fingerprint(llc) -> dict:
    """Canonical description of an LLC model's parameters."""
    return {
        "capacity_bytes": llc.capacity_bytes,
        "hit_latency_ns": llc.hit_latency_ns,
    }


def client_fingerprint(client) -> dict:
    """Canonical description of a measuring client's settings.

    Works for any object exposing the :class:`~repro.ycsb.client.YCSBClient`
    configuration surface (repeats, noise, percentiles, seed, concurrency).
    """
    seed = client.seed
    if isinstance(seed, np.random.Generator):
        raise ConfigurationError(
            "clients seeded with a live Generator cannot be fingerprinted; "
            "pass an integer seed (or None) for cacheable experiments"
        )
    body = {
        "repeats": client.repeats,
        "noise_sigma": client.noise.sigma,
        "use_llc": client.use_llc,
        "percentiles": list(client.percentiles),
        "seed": seed,
        "concurrency": client.concurrency,
        "contention": client.contention,
    }
    # only fault-injecting clients contribute a "faults" key, so every
    # pre-fault fingerprint (and cache entry) stays valid
    faults = getattr(client, "faults", None)
    if faults is not None and faults.active:
        body["faults"] = canonicalize(faults)
    return body


def experiment_fingerprint(
    trace_digest: str, deployment, client,
) -> str:
    """Fingerprint of one (trace, deployment, client) measurement.

    Parameters
    ----------
    trace_digest:
        Precomputed :func:`trace_fingerprint` (callers typically already
        have it for the hit-mask memo).
    deployment:
        The :class:`~repro.kvstore.server.HybridDeployment` under test;
        contributes the engine profile, the placement mask and the
        memory-system parameters.
    client:
        The measuring client; contributes repeats/noise/seed settings.
    """
    record_sizes, fast_mask = deployment.placement_arrays()
    return experiment_fingerprint_parts(
        trace_digest, deployment.profile, fast_mask,
        deployment.system, client,
    )


def experiment_fingerprint_parts(
    trace_digest: str, profile, fast_mask, system, client,
) -> str:
    """Experiment fingerprint from its separately known components.

    Identical to :func:`experiment_fingerprint` but usable before (or
    without) constructing a deployment — e.g. to probe the result cache
    from an :class:`~repro.runner.grid.ExperimentSpec` alone, where the
    profile, placement mask and system are all derivable cheaply.
    """
    body = {
        "trace": trace_digest,
        "engine": canonicalize(profile),
        "placement": array_digest(np.asarray(fast_mask))[:SHORT_DIGEST_LEN],
        "system": system_fingerprint(system),
        "client": client_fingerprint(client),
    }
    return digest(body)[:SHORT_DIGEST_LEN]
