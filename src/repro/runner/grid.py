"""Parallel experiment grids with deterministic results.

:class:`ExperimentRunner` executes workload x store x placement grids,
optionally across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Three properties make the parallel path safe:

- every experiment is described by a picklable :class:`ExperimentSpec`
  (engines are named, not passed as live objects);
- noise seeds derive from the experiment fingerprint, so a task measures
  the same numbers no matter which process or schedule runs it —
  parallel grids are bit-identical to serial ones;
- cache writes are atomic, so workers can share one cache directory.

Placements:

``"fast"``
    Every record on FastMem (the best-case baseline).
``"slow"``
    Every record on SlowMem (the worst-case baseline).
``"split"``
    The hottest keys — ranked by access count, ties broken by key id —
    on FastMem up to ``fast_fraction`` of the total payload bytes (a
    Fig 5-style capacity sweep point).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kvstore.dynamolike import DynamoLike
from repro.kvstore.memcachedlike import MemcachedLike
from repro.kvstore.redislike import RedisLike
from repro.kvstore.server import HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.kvstore.profiles import profile_for
from repro.runner.cache import ResultCache, ensure_cache
from repro.runner.caching import CachingClient
from repro.runner.fingerprint import (
    experiment_fingerprint_parts,
    trace_fingerprint,
    workload_fingerprint,
)
from repro.ycsb.client import DEFAULT_PERCENTILES, RunResult, YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.workload import Trace, WorkloadSpec

#: Engine factories by CLI name; grid specs reference engines by name so
#: they stay picklable across process boundaries.
ENGINE_FACTORIES = {
    "redis": RedisLike,
    "memcached": MemcachedLike,
    "dynamodb": DynamoLike,
}

#: Placement modes an :class:`ExperimentSpec` may request.
PLACEMENTS = ("fast", "slow", "split")


@dataclass(frozen=True)
class ClientConfig:
    """Picklable description of a measuring client.

    Mirrors the :class:`~repro.ycsb.client.YCSBClient` constructor, but
    the seed must be an integer (or None): live generators can be
    neither pickled nor fingerprinted.
    """

    repeats: int = 3
    noise_sigma: float = 0.01
    use_llc: bool = False
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    seed: int | None = None
    concurrency: int = 1
    contention: float = 0.15

    def build(self, cache: ResultCache | None = None) -> YCSBClient:
        """Construct the client (caching when a cache is supplied)."""
        kwargs = dict(
            repeats=self.repeats,
            noise_sigma=self.noise_sigma,
            use_llc=self.use_llc,
            percentiles=self.percentiles,
            seed=self.seed,
            concurrency=self.concurrency,
            contention=self.contention,
        )
        if cache is not None:
            return CachingClient(cache=cache, **kwargs)
        return YCSBClient(**kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an experiment grid (picklable, fingerprintable)."""

    workload: WorkloadSpec
    engine: str = "redis"
    placement: str = "slow"
    fast_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_FACTORIES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                f"choose from {sorted(ENGINE_FACTORIES)}"
            )
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENTS}"
            )
        if not 0.0 <= self.fast_fraction <= 1.0:
            raise ConfigurationError(
                f"fast_fraction must be in [0, 1], got {self.fast_fraction}"
            )

    @property
    def label(self) -> str:
        """Short human-readable identifier for logs and tables."""
        tail = (
            f"split{self.fast_fraction:.2f}"
            if self.placement == "split" else self.placement
        )
        return f"{self.workload.name}/{self.engine}/{tail}"


def split_fast_keys(trace: Trace, fraction: float) -> np.ndarray:
    """Hottest keys filling *fraction* of the payload bytes.

    Keys are ranked by access count (descending, ties by ascending key
    id) and taken greedily while the cumulative payload stays within the
    byte budget — deterministic for a given trace.
    """
    counts = np.bincount(trace.keys, minlength=trace.record_sizes.size)
    order = np.argsort(-counts, kind="stable")
    budget = fraction * float(trace.record_sizes.sum())
    within = np.cumsum(trace.record_sizes[order]) <= budget
    return order[within]


class ExperimentRunner:
    """Executes experiment grids with caching and optional parallelism.

    Parameters
    ----------
    cache:
        Result cache (a :class:`~repro.runner.cache.ResultCache`, a
        directory path, or None to disable caching).
    client:
        Client settings applied to every experiment.
    system_factory:
        Builds a fresh hybrid memory system per deployment.  Must be
        picklable (a module-level callable) for parallel grids; the
        default Table I testbed is.
    workers:
        Default process count for :meth:`run_grid` (None = serial).
    """

    def __init__(
        self,
        cache: ResultCache | str | None = None,
        client: ClientConfig = ClientConfig(),
        system_factory=HybridMemorySystem.testbed,
        workers: int | None = None,
    ):
        self.cache = ensure_cache(cache)
        self.client_config = client
        self.system_factory = system_factory
        self.workers = workers
        self._client = client.build(self.cache)

    # -- building blocks ---------------------------------------------------------

    def trace_for(self, workload: WorkloadSpec) -> Trace:
        """Materialise a workload's trace, via the trace cache if present."""
        if self.cache is None:
            return generate_trace(workload)
        fp = workload_fingerprint(workload)
        trace = self.cache.get_trace(fp)
        if trace is None:
            trace = generate_trace(workload)
            self.cache.put_trace(fp, trace)
        return trace

    def deployment_for(
        self, spec: ExperimentSpec, trace: Trace,
    ) -> HybridDeployment:
        """Build the deployment a spec describes."""
        factory = ENGINE_FACTORIES[spec.engine]
        system = self.system_factory()
        if spec.placement == "fast":
            return HybridDeployment.all_fast(
                factory, system, trace.record_sizes
            )
        if spec.placement == "slow":
            return HybridDeployment.all_slow(
                factory, system, trace.record_sizes
            )
        fast_keys = split_fast_keys(trace, spec.fast_fraction)
        return HybridDeployment(
            factory, system, trace.record_sizes, fast_keys=fast_keys
        )

    def placement_mask(self, spec: ExperimentSpec, trace: Trace) -> np.ndarray:
        """The FastMem membership mask a spec's deployment would have."""
        n = trace.record_sizes.size
        if spec.placement == "fast":
            return np.ones(n, dtype=bool)
        mask = np.zeros(n, dtype=bool)
        if spec.placement == "split":
            mask[split_fast_keys(trace, spec.fast_fraction)] = True
        return mask

    def spec_fingerprint(self, spec: ExperimentSpec, trace: Trace) -> str:
        """Experiment fingerprint computed without building a deployment.

        Matches what the caching client computes after construction, so
        warm-cache probes skip record loading entirely.
        """
        return experiment_fingerprint_parts(
            trace_fingerprint(trace),
            profile_for(spec.engine),
            self.placement_mask(spec, trace),
            self.system_factory(),
            self._client,
        )

    # -- execution ---------------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunResult:
        """Execute one experiment (through the cache when configured).

        When a cache is configured, the result is probed by the spec's
        fingerprint *before* the deployment is built, so warm runs pay
        only for trace loading and hashing.
        """
        trace = self.trace_for(spec.workload)
        if self.cache is not None:
            hit = self.cache.get_result(self.spec_fingerprint(spec, trace))
            if hit is not None:
                return hit
        return self._client.execute(trace, self.deployment_for(spec, trace))

    def run_grid(
        self, specs: list[ExperimentSpec], workers: int | None = None,
    ) -> list[RunResult]:
        """Execute *specs*, preserving order; parallel when workers > 1.

        Results are bit-identical to a serial :meth:`run` loop: each
        task's noise streams derive from its experiment fingerprint, so
        scheduling cannot leak into the numbers.
        """
        workers = self.workers if workers is None else workers
        if workers is None:
            workers = 1
        workers = max(1, min(int(workers), len(specs) or 1))
        if workers == 1 or len(specs) <= 1:
            return [self.run(spec) for spec in specs]
        root = None if self.cache is None else str(self.cache.root)
        payloads = [
            (spec, self.client_config, root, self.system_factory)
            for spec in specs
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_worker_run, payloads))

    def baselines(self, workload: WorkloadSpec, engine: str = "redis"):
        """FastMem/SlowMem baselines for one (workload, engine) pair.

        Returns a :class:`~repro.core.sensitivity.PerformanceBaselines`,
        the structure the Estimate Engine consumes.
        """
        from repro.core.sensitivity import PerformanceBaselines
        fast, slow = self.run_grid([
            ExperimentSpec(workload=workload, engine=engine, placement="fast"),
            ExperimentSpec(workload=workload, engine=engine, placement="slow"),
        ])
        return PerformanceBaselines(fast=fast, slow=slow)

    @staticmethod
    def grid(
        workloads,
        engines=("redis",),
        placements=("fast", "slow"),
        fast_fractions=(0.0,),
    ) -> list[ExperimentSpec]:
        """The cross product of the given axes as a list of specs.

        ``fast_fractions`` only multiplies cells whose placement is
        ``"split"``; baseline placements appear once each.
        """
        specs = []
        for workload in workloads:
            for engine in engines:
                for placement in placements:
                    fracs = fast_fractions if placement == "split" else (0.0,)
                    for frac in fracs:
                        specs.append(ExperimentSpec(
                            workload=workload,
                            engine=engine,
                            placement=placement,
                            fast_fraction=frac,
                        ))
        return specs


def default_workers() -> int:
    """A sensible process count for parallel grids (>= 1)."""
    return max(1, os.cpu_count() or 1)


def _worker_run(payload) -> RunResult:
    """Process-pool entry point: rebuild a serial runner and execute."""
    spec, client_config, cache_root, system_factory = payload
    runner = ExperimentRunner(
        cache=cache_root,
        client=client_config,
        system_factory=system_factory,
        workers=None,
    )
    return runner.run(spec)
