"""Parallel experiment grids with deterministic results and retries.

:class:`ExperimentRunner` executes workload x store x placement grids,
optionally across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Three properties make the parallel path safe:

- every experiment is described by a picklable :class:`ExperimentSpec`
  (engines are named, not passed as live objects);
- noise seeds derive from the experiment fingerprint, so a task measures
  the same numbers no matter which process or schedule runs it —
  parallel grids are bit-identical to serial ones;
- cache writes are atomic, so workers can share one cache directory.

The same fingerprint-derived determinism makes the pipeline *crash
tolerant for free*: a retried experiment measures exactly the numbers
the crashed attempt would have, so :meth:`ExperimentRunner.sweep` can
recover from worker death (``BrokenProcessPool``), injected chaos, and
per-experiment timeouts with bounded, backoff-spaced retries — and a
sweep that still loses experiments returns every completed result plus
a structured :class:`FailureReport` instead of raising
(:meth:`run_grid` keeps the raise-on-failure contract for callers that
want it).

Pooled sweeps are *planned*, not scattered: specs sharing a (workload,
engine) pair — one trace, one engine profile, one batch kernel — are
dispatched as whole placement batches to workers, which execute them
through the batch kernel (:class:`~repro.runner.caching.PlacementBatch`
with the ``grouped_batch`` telemetry path label).  Traces travel once
per sweep through a shared-memory plane (:mod:`repro.runner.shm`)
instead of once per task through pickles or the disk cache, the worker
pool persists across retry rounds *and* across sweeps (the guard loop
and repeated CLI sweeps stop paying pool spin-up), and per-spec failure
attribution survives batching: worker replies are per-spec, and
unattributable batch failures (pool death, batch timeouts) deterministically
split the group into halves until the culprit stands alone.  Results,
fingerprints and cache entries are bit-identical to the serial and
per-cell paths; ``plan="cell"`` / ``use_shm=False`` are escape hatches.

Placements:

``"fast"``
    Every record on FastMem (the best-case baseline).
``"slow"``
    Every record on SlowMem (the worst-case baseline).
``"split"``
    The hottest keys — ranked by access count, ties broken by key id —
    on FastMem up to ``fast_fraction`` of the total payload bytes (a
    Fig 5-style capacity sweep point).
"""

from __future__ import annotations

import os
import time
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    ExperimentTimeoutError,
    FaultError,
    WorkloadError,
)
from repro.rng import derive_seed
from repro.kvstore.dynamolike import DynamoLike
from repro.kvstore.memcachedlike import MemcachedLike
from repro.kvstore.redislike import RedisLike
from repro.kvstore.server import HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.kvstore.profiles import profile_for
from repro.runner.cache import ResultCache, ensure_cache
from repro.runner.caching import CachingClient, PlacementBatch
from repro.runner.fingerprint import (
    experiment_fingerprint_parts,
    trace_fingerprint,
    workload_fingerprint,
)
from repro.runner.shm import SharedTraceHandle, TracePlane, attach_trace
from repro.ycsb.client import DEFAULT_PERCENTILES, RunResult, YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.workload import Trace, WorkloadSpec

#: Engine factories by CLI name; grid specs reference engines by name so
#: they stay picklable across process boundaries.
ENGINE_FACTORIES = {
    "redis": RedisLike,
    "memcached": MemcachedLike,
    "dynamodb": DynamoLike,
}

#: Placement modes an :class:`ExperimentSpec` may request.
PLACEMENTS = ("fast", "slow", "split")

#: Sweep dispatch plans.  ``"auto"`` resolves to grouped-batch dispatch
#: on the pool path (the fast default); ``"grouped"`` forces it;
#: ``"cell"`` restores one task per grid cell.
PLANS = ("auto", "grouped", "cell")

#: Errors that retrying cannot fix (bad inputs, not transient faults).
NON_RETRYABLE = (ConfigurationError, WorkloadError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Attempts per experiment (1 = no retries).
    timeout_s:
        Per-experiment timeout in seconds (None = unlimited).  Enforced
        on the process-pool path; a sweep with a timeout therefore runs
        pooled even for ``workers=1``.
    backoff_base_s / backoff_factor:
        Sleep before retry *k* (1-based) is
        ``backoff_base_s * backoff_factor**(k - 1)``, scaled by jitter.
    jitter:
        Relative jitter width added on top of the exponential backoff.
        Derived from a hash of (label, attempt) rather than wall-clock
        entropy, so resilience behaviour is as replayable as the
        measurements themselves.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff_base_s must be >= 0 and backoff_factor >= 1"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    def backoff_s(self, attempt: int, label: str = "") -> float:
        """Sleep before retry *attempt* (1-based), jittered."""
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        u = derive_seed(None, f"{label}/backoff/{attempt}") / 2.0**32
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class ExperimentFailure:
    """One experiment a sweep could not complete."""

    label: str
    error: str
    message: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.error}: {self.message} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass(frozen=True)
class FailureReport:
    """Structured record of everything a sweep failed to complete."""

    failures: tuple[ExperimentFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the sweep completed every experiment."""
        return not self.failures

    def __len__(self) -> int:
        return len(self.failures)

    def summary(self) -> str:
        """Multi-line human-readable account of the failures."""
        if self.ok:
            return "all experiments completed"
        lines = [f"{len(self.failures)} experiment(s) failed:"]
        lines += [f"  - {f}" for f in self.failures]
        return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentMeta:
    """How one experiment was obtained (not *what* it measured).

    ``provenance`` is ``"cache"`` (recalled from the result cache),
    ``"computed"`` (measured fresh through the simulator),
    ``"uncached"`` (measured with no cache configured) or ``"journal"``
    (restored from a sweep journal checkpoint on resume).  ``duration_s``
    is the experiment's wall-clock time in the process that ran it.
    ``telemetry`` carries a pool worker's
    :class:`~repro.telemetry.session.TelemetrySnapshot` back to the
    coordinator; it is stripped before the meta lands in a
    :class:`GridOutcome`.
    """

    label: str
    duration_s: float
    provenance: str
    telemetry: object | None = None


@dataclass(frozen=True)
class GridOutcome:
    """What a resilient sweep produced.

    ``results`` preserves spec order, with ``None`` at the slots of
    failed experiments; ``report`` explains every ``None``; ``metas``
    (parallel to ``results``) records each experiment's wall-clock
    duration and cache provenance.  ``elapsed_s`` is the sweep's true
    elapsed wall clock on the coordinator — parallel sweeps finish in
    far less time than the per-experiment durations sum to.
    """

    results: tuple[RunResult | None, ...]
    report: FailureReport = field(default_factory=FailureReport)
    metas: tuple[ExperimentMeta | None, ...] = ()
    elapsed_s: float = 0.0

    @property
    def completed(self) -> list[RunResult]:
        """The successful results, in spec order."""
        return [r for r in self.results if r is not None]

    @property
    def ok(self) -> bool:
        """True when every experiment completed."""
        return self.report.ok

    @property
    def durations(self) -> tuple[float | None, ...]:
        """Per-experiment wall-clock seconds, in spec order."""
        return tuple(
            m.duration_s if m is not None else None for m in self.metas
        )

    @property
    def provenance(self) -> tuple[str | None, ...]:
        """Per-experiment cache provenance, in spec order."""
        return tuple(
            m.provenance if m is not None else None for m in self.metas
        )

    def summary(self) -> str:
        """Human-readable account: completion, timing, provenance."""
        n = len(self.results)
        done = len(self.completed)
        lines = [f"completed {done}/{n} experiment(s)"]
        metas = [m for m in self.metas if m is not None]
        if metas:
            total = sum(m.duration_s for m in metas)
            counts: dict[str, int] = {}
            for m in metas:
                counts[m.provenance] = counts.get(m.provenance, 0) + 1
            mix = ", ".join(
                f"{counts[k]} {k}" for k in sorted(counts)
            )
            lines.append(f"compute: {total:.3f}s aggregate ({mix})")
            resumed = counts.get("journal", 0)
            if resumed:
                lines.append(
                    f"resume: {resumed} resumed from journal, "
                    f"{len(metas) - resumed} fresh"
                )
            if self.elapsed_s > 0:
                lines.append(f"wall clock: {self.elapsed_s:.3f}s elapsed")
            slowest = max(metas, key=lambda m: m.duration_s)
            lines.append(
                f"slowest: {slowest.label} "
                f"({slowest.duration_s:.3f}s, {slowest.provenance})"
            )
        if not self.report.ok:
            lines.append(self.report.summary())
        return "\n".join(lines)

    def raise_if_failed(self) -> "GridOutcome":
        """Raise :class:`~repro.errors.FaultError` on any failure."""
        if not self.report.ok:
            raise FaultError(self.report.summary())
        return self


@dataclass(frozen=True)
class ClientConfig:
    """Picklable description of a measuring client.

    Mirrors the :class:`~repro.ycsb.client.YCSBClient` constructor, but
    the seed must be an integer (or None): live generators can be
    neither pickled nor fingerprinted.  ``faults`` is an optional
    :class:`~repro.faults.FaultSpec` — a frozen dataclass, so the config
    stays picklable and fingerprintable with faults attached.
    """

    repeats: int = 3
    noise_sigma: float = 0.01
    use_llc: bool = False
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    seed: int | None = None
    concurrency: int = 1
    contention: float = 0.15
    faults: object | None = None

    def build(self, cache: ResultCache | None = None) -> YCSBClient:
        """Construct the client (caching when a cache is supplied)."""
        kwargs = dict(
            repeats=self.repeats,
            noise_sigma=self.noise_sigma,
            use_llc=self.use_llc,
            percentiles=self.percentiles,
            seed=self.seed,
            concurrency=self.concurrency,
            contention=self.contention,
            faults=self.faults,
        )
        if cache is not None:
            return CachingClient(cache=cache, **kwargs)
        return YCSBClient(**kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an experiment grid (picklable, fingerprintable)."""

    workload: WorkloadSpec
    engine: str = "redis"
    placement: str = "slow"
    fast_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_FACTORIES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                f"choose from {sorted(ENGINE_FACTORIES)}"
            )
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENTS}"
            )
        if not 0.0 <= self.fast_fraction <= 1.0:
            raise ConfigurationError(
                f"fast_fraction must be in [0, 1], got {self.fast_fraction}"
            )

    @property
    def label(self) -> str:
        """Short human-readable identifier for logs and tables."""
        tail = (
            f"split{self.fast_fraction:.2f}"
            if self.placement == "split" else self.placement
        )
        return f"{self.workload.name}/{self.engine}/{tail}"


def split_fast_keys(trace: Trace, fraction: float) -> np.ndarray:
    """Hottest keys filling *fraction* of the payload bytes.

    Keys are ranked by access count (descending, ties by ascending key
    id) and taken greedily while the cumulative payload stays within the
    byte budget — deterministic for a given trace.
    """
    counts = np.bincount(trace.keys, minlength=trace.record_sizes.size)
    order = np.argsort(-counts, kind="stable")
    budget = fraction * float(trace.record_sizes.sum())
    within = np.cumsum(trace.record_sizes[order]) <= budget
    return order[within]


class _Resources:
    """Mutable holder of a runner's persistent pool and trace plane.

    Lives outside the runner so ``weakref.finalize`` can release both
    when the runner is collected without the finalizer keeping the
    runner itself alive.
    """

    __slots__ = ("pool", "plane")

    def __init__(self):
        self.pool = None
        self.plane = None

    def release(self, kill: bool = False) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            if kill:
                for proc in getattr(pool, "_processes", {}).values():
                    try:
                        proc.terminate()
                    except OSError:  # pragma: no cover - already gone
                        pass
            pool.shutdown(wait=not kill, cancel_futures=True)
        plane, self.plane = self.plane, None
        if plane is not None:
            plane.close()


class ExperimentRunner:
    """Executes experiment grids with caching and optional parallelism.

    Parameters
    ----------
    cache:
        Result cache (a :class:`~repro.runner.cache.ResultCache`, a
        directory path, or None to disable caching).
    client:
        Client settings applied to every experiment.
    system_factory:
        Builds a fresh hybrid memory system per deployment.  Must be
        picklable (a module-level callable) for parallel grids; the
        default Table I testbed is.
    workers:
        Default process count for :meth:`run_grid` (None = serial).
    retry:
        The :class:`RetryPolicy` governing timeouts, retry budget and
        backoff for :meth:`sweep` / :meth:`run_grid`.
    chaos:
        Optional :class:`~repro.faults.ChaosPlan` striking experiments
        (worker kills / failures / hangs) — the fault-injection hook the
        chaos tests and game-days use.  Serial runs downgrade ``exit``
        strikes to raised :class:`~repro.errors.FaultError`\\ s so chaos
        never kills the calling process.
    plan:
        Default sweep dispatch plan (one of :data:`PLANS`).
    use_shm:
        Whether grouped sweeps publish traces through the shared-memory
        plane (:mod:`repro.runner.shm`).  ``False`` makes workers fall
        back to the trace cache / regeneration.

    The runner owns two persistent resources: a process pool that
    survives across retry rounds and across sweeps, and the
    shared-memory trace plane.  Both are released by :meth:`close`
    (the runner is also a context manager) or, failing that, by a
    finalizer at garbage collection.
    """

    def __init__(
        self,
        cache: ResultCache | str | None = None,
        client: ClientConfig = ClientConfig(),
        system_factory=HybridMemorySystem.testbed,
        workers: int | None = None,
        retry: RetryPolicy = RetryPolicy(),
        chaos=None,
        plan: str = "auto",
        use_shm: bool = True,
    ):
        if plan not in PLANS:
            raise ConfigurationError(
                f"unknown plan {plan!r}; choose from {PLANS}"
            )
        self.cache = ensure_cache(cache)
        self.client_config = client
        self.system_factory = system_factory
        self.workers = workers
        self.retry = retry
        self.chaos = chaos
        self.plan = plan
        self.use_shm = bool(use_shm)
        self._client = client.build(self.cache)
        self._res = _Resources()
        self._pool_workers = 0
        self._shm_handles: dict[str, SharedTraceHandle] = {}
        self._finalizer = weakref.finalize(self, _Resources.release, self._res)

    # -- persistent resources ----------------------------------------------------

    def close(self) -> None:
        """Release the persistent pool and unlink every shm segment."""
        self._discard_pool()
        self._shm_handles.clear()
        plane, self._res.plane = self._res.plane, None
        if plane is not None:
            plane.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent pool, rebuilt only when it is absent or small.

        Worker processes spawn lazily on submit, so sizing the pool to
        the full worker budget costs nothing for small rounds — and a
        warm pool (loaded modules, attached traces, memoized runners)
        is reused across retry rounds and across sweeps.
        """
        pool = self._res.pool
        if pool is not None and self._pool_workers >= workers:
            telemetry.count("runner.pool", event="reuse")
            return pool
        if pool is not None:
            self._discard_pool()
        pool = ProcessPoolExecutor(max_workers=workers)
        self._res.pool = pool
        self._pool_workers = workers
        telemetry.count("runner.pool", event="spinup")
        return pool

    def _discard_pool(self, kill: bool = False) -> None:
        """Drop the persistent pool (terminating its workers if *kill*)."""
        pool, self._res.pool = self._res.pool, None
        self._pool_workers = 0
        if pool is None:
            return
        if kill:
            for proc in getattr(pool, "_processes", {}).values():
                try:
                    proc.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
        pool.shutdown(wait=not kill, cancel_futures=True)

    def _trace_plane(self) -> TracePlane:
        if self._res.plane is None:
            self._res.plane = TracePlane()
        return self._res.plane

    def _publish_trace(self, workload: WorkloadSpec) -> SharedTraceHandle:
        """Publish a workload's trace (idempotent across sweeps)."""
        fp = workload_fingerprint(workload)
        handle = self._shm_handles.get(fp)
        if handle is not None and handle.digest in self._trace_plane():
            return handle
        handle = self._trace_plane().publish(self.trace_for(workload))
        self._shm_handles[fp] = handle
        return handle

    # -- building blocks ---------------------------------------------------------

    def trace_for(self, workload: WorkloadSpec) -> Trace:
        """Materialise a workload's trace, via the trace cache if present."""
        if self.cache is None:
            return generate_trace(workload)
        fp = workload_fingerprint(workload)
        trace = self.cache.get_trace(fp)
        if trace is None:
            trace = generate_trace(workload)
            self.cache.put_trace(fp, trace)
        return trace

    def deployment_for(
        self, spec: ExperimentSpec, trace: Trace,
    ) -> HybridDeployment:
        """Build the deployment a spec describes."""
        factory = ENGINE_FACTORIES[spec.engine]
        system = self.system_factory()
        if spec.placement == "fast":
            return HybridDeployment.all_fast(
                factory, system, trace.record_sizes
            )
        if spec.placement == "slow":
            return HybridDeployment.all_slow(
                factory, system, trace.record_sizes
            )
        fast_keys = split_fast_keys(trace, spec.fast_fraction)
        return HybridDeployment(
            factory, system, trace.record_sizes, fast_keys=fast_keys
        )

    def placement_mask(self, spec: ExperimentSpec, trace: Trace) -> np.ndarray:
        """The FastMem membership mask a spec's deployment would have."""
        n = trace.record_sizes.size
        if spec.placement == "fast":
            return np.ones(n, dtype=bool)
        mask = np.zeros(n, dtype=bool)
        if spec.placement == "split":
            mask[split_fast_keys(trace, spec.fast_fraction)] = True
        return mask

    def spec_fingerprint(self, spec: ExperimentSpec, trace: Trace) -> str:
        """Experiment fingerprint computed without building a deployment.

        Matches what the caching client computes after construction, so
        warm-cache probes skip record loading entirely.
        """
        return experiment_fingerprint_parts(
            trace_fingerprint(trace),
            profile_for(spec.engine),
            self.placement_mask(spec, trace),
            self.system_factory(),
            self._client,
        )

    # -- execution ---------------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunResult:
        """Execute one experiment (through the cache when configured).

        When a cache is configured, the result is probed by the spec's
        fingerprint *before* the deployment is built, so warm runs pay
        only for trace loading and hashing.
        """
        return self.run_with_meta(spec)[0]

    def run_with_meta(
        self, spec: ExperimentSpec,
    ) -> tuple[RunResult, ExperimentMeta]:
        """:meth:`run` plus the experiment's duration and provenance."""
        start = time.perf_counter()
        with telemetry.span("runner.experiment", label=spec.label) as sp:
            trace = self.trace_for(spec.workload)
            provenance = "uncached" if self.cache is None else "computed"
            result = None
            if self.cache is not None:
                result = self.cache.get_result(
                    self.spec_fingerprint(spec, trace)
                )
                if result is not None:
                    provenance = "cache"
            if result is None:
                hits_before = getattr(self._client, "cache_hits", 0)
                result = self._client.execute(
                    trace, self.deployment_for(spec, trace)
                )
                if getattr(self._client, "cache_hits", 0) > hits_before:
                    provenance = "cache"
            sp.set("provenance", provenance)
        return result, ExperimentMeta(
            label=spec.label,
            duration_s=time.perf_counter() - start,
            provenance=provenance,
        )

    def _run_one(self, spec: ExperimentSpec) -> tuple[RunResult, ExperimentMeta]:
        """Serial execution of one spec, honouring the chaos plan."""
        if self.chaos is not None:
            self.chaos.maybe_strike(spec.label, allow_exit=False)
        return self.run_with_meta(spec)

    def _payload(self, spec: ExperimentSpec):
        root = None if self.cache is None else str(self.cache.root)
        return (
            spec, self.client_config, root, self.system_factory, self.chaos,
            telemetry.worker_config(),
        )

    def sweep(
        self,
        specs: list[ExperimentSpec],
        workers: int | None = None,
        retry: RetryPolicy | None = None,
        plan: str | None = None,
        use_shm: bool | None = None,
        journal=None,
    ) -> GridOutcome:
        """Execute *specs* resiliently; never raises on partial loss.

        Failures — worker death, injected chaos, timeouts, transient
        errors — are retried up to ``retry.max_attempts`` times with
        exponential backoff.  Because every measurement is a pure
        function of its fingerprint, a retried experiment produces
        numbers bit-identical to what the lost attempt would have
        measured.  Experiments that stay broken are recorded in the
        outcome's :class:`FailureReport` while every completed result
        is returned in spec order.

        Per-experiment timeouts (``retry.timeout_s``) are enforced on
        the process-pool path; setting one forces pooled execution even
        for a single worker.  The timeout bounds the wait once the
        sweep starts waiting on an experiment, so concurrent
        experiments never make each other time out.  A whole-batch wait
        on the grouped path is bounded by ``timeout_s`` times the batch
        size, preserving the per-experiment budget.

        ``plan`` selects the pooled dispatch strategy (see
        :data:`PLANS`): grouped placement batches by default, one task
        per grid cell with ``"cell"``.  ``use_shm`` controls the
        shared-memory trace plane on the grouped path.  Both default to
        the runner's settings; results are bit-identical across every
        plan, schedule and shm setting.

        ``journal`` (a :class:`~repro.store.SweepJournal`) makes the
        sweep *resumable*: every completed experiment is checkpointed
        to the store's oplog the moment its result reaches the
        coordinator, and a sweep re-run under the same run id skips the
        checkpointed work — loading each finished result from the store
        with provenance ``"journal"``.  Because results are
        content-addressed, a sweep killed at any point and resumed
        produces results bit-identical to an uninterrupted run.
        Journaling requires a cache/store (the checkpoints point at its
        rows).
        """
        if journal is not None and self.cache is None:
            raise ConfigurationError(
                "journaled sweeps need a cache/store to hold the "
                "checkpointed results; configure the runner with one"
            )
        retry = self.retry if retry is None else retry
        workers = self.workers if workers is None else workers
        workers = max(1, min(int(workers or 1), len(specs) or 1))
        plan = self.plan if plan is None else plan
        if plan not in PLANS:
            raise ConfigurationError(
                f"unknown plan {plan!r}; choose from {PLANS}"
            )
        use_shm = self.use_shm if use_shm is None else bool(use_shm)
        n = len(specs)
        results: list[RunResult | None] = [None] * n
        metas: list[ExperimentMeta | None] = [None] * n
        attempts = [0] * n
        pending = set(range(n))
        failures: list[ExperimentFailure] = []

        fingerprints: list[str] = []
        recorded: set[int] = set()
        if journal is not None:
            fingerprints = [
                self.spec_fingerprint(spec, self.trace_for(spec.workload))
                for spec in specs
            ]
            resumed = journal.begin([spec.label for spec in specs])
            if resumed:
                done = journal.completed()
                for i, fp in enumerate(fingerprints):
                    if fp not in done:
                        continue
                    result = self.cache.get_result(fp)
                    if result is None:  # checkpoint without a row: redo
                        continue
                    results[i] = result
                    metas[i] = ExperimentMeta(
                        label=specs[i].label, duration_s=0.0,
                        provenance="journal",
                    )
                    pending.discard(i)
                    recorded.add(i)
                telemetry.count("runner.resumed", float(len(recorded)))
                telemetry.event(
                    "runner.sweep_resumed", run_id=journal.run_id,
                    n_resumed=len(recorded), n_fresh=len(pending),
                )

        def checkpoint(i: int) -> None:
            """Journal one completed experiment exactly once."""
            if journal is None or i in recorded:
                return
            recorded.add(i)
            journal.record(i, specs[i].label, fingerprints[i])

        on_result = None if journal is None else checkpoint
        use_pool = n > 0 and (workers > 1 or retry.timeout_s is not None)
        grouped = use_pool and plan != "cell"
        isolate = False
        splits: dict[tuple, int] = {}
        t_start = time.perf_counter()

        with telemetry.span(
            "runner.sweep", n_specs=n, workers=workers, pooled=use_pool,
            plan="grouped" if grouped else ("cell" if use_pool else "serial"),
        ):
            handles = None
            if grouped and use_shm:
                handles = {}
                try:
                    for spec in specs:
                        fp = workload_fingerprint(spec.workload)
                        if fp not in handles:
                            handles[fp] = self._publish_trace(spec.workload)
                except Exception:  # shm unavailable: workers materialise
                    handles = None
                    telemetry.count("runner.shm", op="publish_failed")
            while pending:
                if grouped:
                    failed, broke = self._grouped_round(
                        specs, results, metas, sorted(pending), pending,
                        workers, retry, splits, handles, isolate,
                        on_result=on_result,
                    )
                    isolate = broke
                elif use_pool:
                    failed, broke = self._pooled_round(
                        specs, results, metas, sorted(pending), pending,
                        workers, retry, isolate, on_result=on_result,
                    )
                    isolate = broke
                else:
                    failed = self._serial_round(
                        specs, results, metas, sorted(pending), pending,
                        on_result=on_result,
                    )
                retryable = []
                for i, exc in failed.items():
                    attempts[i] += 1
                    if isinstance(exc, ExperimentTimeoutError):
                        telemetry.count("runner.timeouts")
                        telemetry.event(
                            "runner.timeout", label=specs[i].label,
                            attempt=attempts[i],
                        )
                    exhausted = attempts[i] >= retry.max_attempts
                    if exhausted or isinstance(exc, NON_RETRYABLE):
                        pending.discard(i)
                        telemetry.count("runner.failures")
                        telemetry.event(
                            "runner.failure", label=specs[i].label,
                            error=type(exc).__name__,
                            attempts=attempts[i],
                        )
                        failures.append(ExperimentFailure(
                            label=specs[i].label,
                            error=type(exc).__name__,
                            message=str(exc),
                            attempts=attempts[i],
                        ))
                    else:
                        retryable.append(i)
                if pending and (failed or isolate):
                    worst = max((attempts[i] for i in retryable), default=1)
                    backoff = retry.backoff_s(
                        worst, label=specs[min(pending)].label,
                    )
                    for i in retryable:
                        telemetry.count("runner.retries")
                        telemetry.event(
                            "runner.retry", label=specs[i].label,
                            attempt=attempts[i], backoff_s=backoff,
                        )
                    time.sleep(backoff)
            telemetry.count(
                "runner.experiments.completed",
                float(sum(1 for r in results if r is not None)),
            )

        if journal is not None:
            journal.finish(
                completed=sum(1 for r in results if r is not None),
                failed=len(failures),
            )
        order = {spec.label: k for k, spec in enumerate(specs)}
        failures.sort(key=lambda f: order.get(f.label, n))
        return GridOutcome(
            results=tuple(results),
            report=FailureReport(failures=tuple(failures)),
            metas=tuple(metas),
            elapsed_s=time.perf_counter() - t_start,
        )

    def _serial_round(
        self, specs, results, metas, order, pending, on_result=None,
    ):
        """One in-process attempt at every pending spec."""
        failed: dict[int, Exception] = {}
        for i in order:
            try:
                results[i], metas[i] = self._run_one(specs[i])
                pending.discard(i)
                if on_result is not None:
                    on_result(i)
            except Exception as exc:
                failed[i] = exc
        return failed

    def _pooled_round(
        self, specs, results, metas, order, pending, workers, retry, isolate,
        on_result=None,
    ):
        """One process-pool attempt at every pending spec.

        Returns ``(failed, broke)``.  When a worker dies it takes the
        whole pool with it and the uncollected tasks cannot be told
        apart from the killer — so nobody's attempt budget is charged
        (``broke=True``) and the next round runs *isolated*: one fresh
        single-task pool per spec, which attributes any further crash
        to exactly the experiment that caused it.
        """
        if isolate:
            failed: dict[int, Exception] = {}
            for i in order:
                failed.update(self._pooled_round(
                    specs, results, metas, [i], pending, 1, retry, False,
                    on_result=on_result,
                )[0])
            return failed, False

        failed = {}
        broke = False
        pool = self._ensure_pool(workers)
        futs = {i: pool.submit(_worker_run, self._payload(specs[i]))
                for i in order}
        collected: set[int] = set()
        terminate = False
        try:
            for i in order:
                try:
                    self._collect(
                        results, metas, i,
                        futs[i].result(timeout=retry.timeout_s),
                    )
                    pending.discard(i)
                    collected.add(i)
                    if on_result is not None:
                        on_result(i)
                except BrokenProcessPool:
                    broke = True
                    telemetry.count("runner.worker_deaths")
                    telemetry.event(
                        "runner.pool_broken", label=specs[i].label,
                        n_pending=len([j for j in order if j in pending]),
                    )
                    break
                except FuturesTimeoutError:
                    failed[i] = ExperimentTimeoutError(
                        f"{specs[i].label} exceeded the "
                        f"{retry.timeout_s:g}s per-experiment timeout"
                    )
                    collected.add(i)
                    terminate = True
                    break
                except Exception as exc:
                    failed[i] = exc
                    collected.add(i)
        finally:
            # salvage results that finished before the round broke
            for i in order:
                if i in collected or not futs[i].done():
                    continue
                try:
                    self._collect(results, metas, i, futs[i].result(timeout=0))
                    pending.discard(i)
                    if on_result is not None:
                        on_result(i)
                except Exception:
                    pass
            if broke or terminate:
                self._discard_pool(kill=True)

        if broke and len([i for i in order if i in pending]) == 1:
            # a single suspect needs no isolation round to be convicted
            culprit = next(i for i in order if i in pending)
            failed[culprit] = FaultError(
                f"worker process died while running {specs[culprit].label}"
            )
            broke = False
        return failed, broke

    # -- grouped dispatch --------------------------------------------------------

    def _plan_batches(self, specs, order, splits):
        """Group pending specs into placement batches.

        Specs sharing a (workload, engine) pair — one trace, one engine
        profile, one batch kernel — form a group, in first-appearance
        order.  A group's current *split level* (from *splits*, bumped
        by :meth:`_split_group` on unattributable batch failures)
        divides it into ``2**level`` contiguous chunks, down to
        singletons; the deterministic chunking is what makes failure
        attribution converge.
        """
        groups: "OrderedDict[tuple, list[int]]" = OrderedDict()
        for i in order:
            key = (workload_fingerprint(specs[i].workload), specs[i].engine)
            groups.setdefault(key, []).append(i)
        batches: list[tuple[tuple, list[int]]] = []
        for key, members in groups.items():
            chunks = 1 << splits.get(key, 0)
            if chunks >= len(members):
                batches.extend((key, [i]) for i in members)
            else:
                size = -(-len(members) // chunks)
                for s in range(0, len(members), size):
                    batches.append((key, members[s:s + size]))
        return batches

    def _split_group(self, specs, batch, splits) -> None:
        """Halve a group's batch size after an unattributable failure."""
        key, members = batch
        splits[key] = splits.get(key, 0) + 1
        spec = specs[members[0]]
        telemetry.count("runner.batch_splits")
        telemetry.event(
            "runner.batch_split", workload=spec.workload.name,
            engine=spec.engine, level=splits[key], n_specs=len(members),
        )

    def _batch_payload(self, specs, batch, handles):
        key, members = batch
        handle = None if handles is None else handles.get(key[0])
        root = None if self.cache is None else str(self.cache.root)
        return (
            tuple(specs[i] for i in members), handle, self.client_config,
            root, self.system_factory, self.chaos,
            telemetry.worker_config(),
        )

    def _collect_batch(
        self, specs, results, metas, pending, batch, reply, failed,
        on_result=None,
    ) -> None:
        """Unpack one batch worker's per-spec replies.

        The reply is ``(entries, snapshot)``: the batch-level telemetry
        snapshot is absorbed once, then each entry either stores a
        ``(result, meta)`` or records the spec's exception in *failed* —
        per-spec attribution survives batching because workers report
        per spec, not per batch.
        """
        _, members = batch
        entries, snapshot = reply
        if snapshot is not None:
            telemetry.absorb(snapshot)
        for local, ok, payload in entries:
            i = members[local]
            if ok:
                results[i], metas[i] = payload
                pending.discard(i)
                if on_result is not None:
                    on_result(i)
            else:
                failed[i] = payload

    def _grouped_round(
        self, specs, results, metas, order, pending, workers, retry,
        splits, handles, isolate, on_result=None,
    ):
        """One grouped-batch attempt at every pending spec.

        Returns ``(failed, broke)`` like :meth:`_pooled_round`.  Worker
        replies are per spec, so in-band failures (raised exceptions,
        injected faults) are attributed exactly.  Out-of-band failures —
        pool death, a batch blowing its time budget — cannot name a
        culprit inside a multi-spec batch, so the batch's group is
        *split* (see :meth:`_plan_batches`) and retried uncharged at
        finer granularity; a singleton batch's failure is charged
        directly.  Only when every suspect batch is already a singleton
        does the round report ``broke=True`` and escalate to isolation.
        """
        if isolate:
            failed: dict[int, Exception] = {}
            for i in order:
                failed.update(self._grouped_isolated(
                    specs, results, metas, i, pending, retry, handles,
                    on_result=on_result,
                ))
            return failed, False

        failed = {}
        broke = False
        batches = self._plan_batches(specs, order, splits)
        pool = self._ensure_pool(workers)
        futs = {
            b: pool.submit(
                _worker_run_batch, self._batch_payload(specs, batch, handles)
            )
            for b, batch in enumerate(batches)
        }
        collected: set[int] = set()
        terminate = False
        try:
            for b, batch in enumerate(batches):
                key, members = batch
                budget = (
                    None if retry.timeout_s is None
                    else retry.timeout_s * len(members)
                )
                try:
                    self._collect_batch(
                        specs, results, metas, pending, batch,
                        futs[b].result(timeout=budget), failed,
                        on_result=on_result,
                    )
                    collected.add(b)
                except BrokenProcessPool:
                    broke = True
                    telemetry.count("runner.worker_deaths")
                    telemetry.event(
                        "runner.pool_broken", label=specs[members[0]].label,
                        n_pending=len([j for j in order if j in pending]),
                    )
                    break
                except FuturesTimeoutError:
                    collected.add(b)
                    terminate = True
                    if len(members) == 1:
                        i = members[0]
                        failed[i] = ExperimentTimeoutError(
                            f"{specs[i].label} exceeded the "
                            f"{retry.timeout_s:g}s per-experiment timeout"
                        )
                    else:  # can't name the slow spec: retry finer, uncharged
                        self._split_group(specs, batch, splits)
                    break
                except Exception as exc:
                    collected.add(b)
                    if len(members) == 1:
                        failed[members[0]] = exc
                    else:
                        self._split_group(specs, batch, splits)
        finally:
            # salvage batches that finished before the round broke
            for b, batch in enumerate(batches):
                if b in collected or not futs[b].done():
                    continue
                try:
                    self._collect_batch(
                        specs, results, metas, pending, batch,
                        futs[b].result(timeout=0), failed,
                        on_result=on_result,
                    )
                except Exception:
                    pass
            if broke or terminate:
                self._discard_pool(kill=True)

        if broke:
            still = [i for i in order if i in pending and i not in failed]
            if len(still) == 1:
                # a single suspect needs no isolation round to be convicted
                failed[still[0]] = FaultError(
                    f"worker process died while running {specs[still[0]].label}"
                )
                broke = False
            else:
                split_any = False
                for b, batch in enumerate(batches):
                    if b in collected or len(batch[1]) == 1:
                        continue
                    if any(i in still for i in batch[1]):
                        self._split_group(specs, batch, splits)
                        split_any = True
                if split_any:
                    broke = False  # uncharged retry at finer granularity
        return failed, broke

    def _grouped_isolated(
        self, specs, results, metas, i, pending, retry, handles,
        on_result=None,
    ):
        """One spec in a fresh single-task pool (attribution by construction)."""
        spec = specs[i]
        batch = ((workload_fingerprint(spec.workload), spec.engine), [i])
        failed: dict[int, Exception] = {}
        pool = ProcessPoolExecutor(max_workers=1)
        fut = pool.submit(
            _worker_run_batch, self._batch_payload(specs, batch, handles)
        )
        kill = False
        try:
            self._collect_batch(
                specs, results, metas, pending, batch,
                fut.result(timeout=retry.timeout_s), failed,
                on_result=on_result,
            )
        except BrokenProcessPool:
            telemetry.count("runner.worker_deaths")
            failed[i] = FaultError(
                f"worker process died while running {spec.label}"
            )
        except FuturesTimeoutError:
            failed[i] = ExperimentTimeoutError(
                f"{spec.label} exceeded the "
                f"{retry.timeout_s:g}s per-experiment timeout"
            )
            kill = True
        except Exception as exc:
            failed[i] = exc
        finally:
            if kill:
                for proc in getattr(pool, "_processes", {}).values():
                    try:
                        proc.terminate()
                    except OSError:  # pragma: no cover - already gone
                        pass
            pool.shutdown(wait=not kill, cancel_futures=True)
        return failed

    @staticmethod
    def _collect(results, metas, i, value) -> None:
        """Store one worker's ``(result, meta)``, folding in its spans.

        The worker's telemetry snapshot is absorbed into the active
        session (a no-op without one) and stripped from the meta so
        :class:`GridOutcome` never retains raw telemetry.
        """
        result, meta = value
        results[i] = result
        if meta.telemetry is not None:
            telemetry.absorb(meta.telemetry)
            meta = replace(meta, telemetry=None)
        metas[i] = meta

    def run_grid(
        self, specs: list[ExperimentSpec], workers: int | None = None,
    ) -> list[RunResult]:
        """Execute *specs*, preserving order; parallel when workers > 1.

        Results are bit-identical to a serial :meth:`run` loop: each
        task's noise streams derive from its experiment fingerprint, so
        scheduling cannot leak into the numbers.  Transient failures
        are retried per the runner's :class:`RetryPolicy`; if any
        experiment stays broken this raises
        :class:`~repro.errors.FaultError` (use :meth:`sweep` for the
        gracefully-degrading variant).
        """
        outcome = self.sweep(specs, workers=workers)
        outcome.raise_if_failed()
        return list(outcome.results)

    def baselines(self, workload: WorkloadSpec, engine: str = "redis"):
        """FastMem/SlowMem baselines for one (workload, engine) pair.

        Returns a :class:`~repro.core.sensitivity.PerformanceBaselines`,
        the structure the Estimate Engine consumes.
        """
        from repro.core.sensitivity import PerformanceBaselines
        fast, slow = self.run_grid([
            ExperimentSpec(workload=workload, engine=engine, placement="fast"),
            ExperimentSpec(workload=workload, engine=engine, placement="slow"),
        ])
        return PerformanceBaselines(fast=fast, slow=slow)

    @staticmethod
    def grid(
        workloads,
        engines=("redis",),
        placements=("fast", "slow"),
        fast_fractions=(0.0,),
    ) -> list[ExperimentSpec]:
        """The cross product of the given axes as a list of specs.

        ``fast_fractions`` only multiplies cells whose placement is
        ``"split"``; baseline placements appear once each.
        """
        specs = []
        for workload in workloads:
            for engine in engines:
                for placement in placements:
                    fracs = fast_fractions if placement == "split" else (0.0,)
                    for frac in fracs:
                        specs.append(ExperimentSpec(
                            workload=workload,
                            engine=engine,
                            placement=placement,
                            fast_fraction=frac,
                        ))
        return specs


def default_workers() -> int:
    """A sensible process count for parallel grids (>= 1)."""
    return max(1, os.cpu_count() or 1)


def _worker_run(payload) -> tuple[RunResult, ExperimentMeta]:
    """Process-pool entry point: rebuild a serial runner and execute.

    Chaos strikes happen here, inside the worker, so an ``exit`` strike
    kills a real worker process (exactly the failure mode
    ``BrokenProcessPool`` recovery exists for) without ever touching
    the coordinating process.

    When the coordinator runs under a telemetry session, the payload
    carries a :class:`~repro.telemetry.session.WorkerTelemetry` config;
    the worker then collects its own spans/metrics (rooted at the
    coordinator's sweep span) and ships the snapshot back inside the
    :class:`ExperimentMeta`.  Workers are reused across tasks, so the
    session is always drained before returning.
    """
    spec, client_config, cache_root, system_factory, chaos, tele = payload
    telemetry.activate_worker(tele)
    try:
        if chaos is not None:
            chaos.maybe_strike(spec.label, allow_exit=True)
        runner = ExperimentRunner(
            cache=cache_root,
            client=client_config,
            system_factory=system_factory,
            workers=None,
        )
        result, meta = runner.run_with_meta(spec)
    finally:
        snapshot = telemetry.drain_worker()
    if snapshot is not None:
        meta = replace(meta, telemetry=snapshot)
    return result, meta


#: Per-worker runner memo: a pool worker serves many batches of the same
#: sweep (and later sweeps from the same runner), so the serial runner —
#: whose client carries the hitmask and trace-digest memos — is rebuilt
#: only when the configuration changes.  Holds one entry: sweeps do not
#: interleave configurations within a worker's lifetime.
_WORKER_RUNNERS: dict = {}

#: Per-worker fallback trace memo (workload fingerprint -> trace) for
#: batches arriving without an attachable shm segment.
_WORKER_TRACES: "OrderedDict[str, Trace]" = OrderedDict()


def _worker_runner(client_config, cache_root, system_factory):
    key = (client_config, cache_root, system_factory)
    try:
        runner = _WORKER_RUNNERS.get(key)
    except TypeError:  # unhashable config: build fresh every batch
        key = None
        runner = None
    if runner is None:
        runner = ExperimentRunner(
            cache=cache_root,
            client=client_config,
            system_factory=system_factory,
            workers=None,
        )
        if key is not None:
            _WORKER_RUNNERS.clear()
            _WORKER_RUNNERS[key] = runner
    return runner


def _worker_trace(runner, workload: WorkloadSpec) -> Trace:
    fp = workload_fingerprint(workload)
    trace = _WORKER_TRACES.get(fp)
    if trace is None:
        trace = runner.trace_for(workload)
        _WORKER_TRACES[fp] = trace
        while len(_WORKER_TRACES) > 8:
            _WORKER_TRACES.popitem(last=False)
    return trace


def _worker_run_batch(payload):
    """Process-pool entry point for one placement batch.

    All specs in the batch share a trace (attached zero-copy from the
    shared-memory plane when a handle is present, else materialised and
    memoized per worker), an engine profile and one
    :class:`~repro.runner.caching.PlacementBatch` — the worker-side half
    of the grouped sweep plan.

    Replies are *per spec*: ``(local_index, ok, payload)`` entries where
    a failed spec carries its exception instead of poisoning the batch,
    matching serial semantics (one bad spec does not block its
    batch-mates).  Chaos strikes fire per spec inside the worker, and
    each spec runs under its own ``runner.experiment`` span rooted at
    the coordinator's sweep span — the span tree is indistinguishable
    from per-cell dispatch.
    """
    specs, handle, client_config, cache_root, system_factory, chaos, tele = (
        payload
    )
    telemetry.activate_worker(tele)
    entries: list[tuple[int, bool, object]] = []
    try:
        runner = _worker_runner(client_config, cache_root, system_factory)
        trace = None
        if handle is not None:
            try:
                trace = attach_trace(handle)
                runner._client.prime_trace_digest(trace, handle.digest)
            except Exception:  # segment gone: degrade, never fail
                trace = None
                telemetry.count("runner.shm", op="fallback")
        if trace is None:
            trace = _worker_trace(runner, specs[0].workload)
        profile = profile_for(specs[0].engine)
        system = runner.system_factory()
        batch = PlacementBatch(
            runner._client, trace, profile, system,
            path_label="grouped_batch",
        )
        for local, spec in enumerate(specs):
            start = time.perf_counter()
            try:
                if chaos is not None:
                    chaos.maybe_strike(spec.label, allow_exit=True)
                with telemetry.span(
                    "runner.experiment", label=spec.label,
                ) as sp:
                    mask = runner.placement_mask(spec, trace)
                    result, provenance = batch.run_cached(mask)
                    sp.set("provenance", provenance)
                meta = ExperimentMeta(
                    label=spec.label,
                    duration_s=time.perf_counter() - start,
                    provenance=provenance,
                )
                entries.append((local, True, (result, meta)))
            except Exception as exc:
                entries.append((local, False, exc))
    finally:
        snapshot = telemetry.drain_worker()
    return entries, snapshot
