"""Experiment runner: fingerprinting, caching, and parallel grids.

The runner makes profiling cheap in the way the paper demands (Table IV:
minutes, not instrumentation slowdowns) by never recomputing what has
already been measured and by fanning grids out over processes:

- :mod:`repro.runner.fingerprint` — canonical SHA-256 fingerprints over
  everything that determines an experiment's outcome;
- :mod:`repro.runner.cache` — the on-disk content-addressed store for
  results, generated traces and LLC hit masks (``.mnemo-cache/``);
- :mod:`repro.runner.caching` — a drop-in caching YCSB client;
- :mod:`repro.runner.grid` — workload x store x placement grids over a
  process pool, bit-identical to serial execution.

See ``docs/RUNNER.md`` for the fingerprint scheme, cache layout and the
determinism guarantees.
"""

from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    SCHEMA_VERSION,
    CacheStats,
    CacheVerifyReport,
    ResultCache,
    ensure_cache,
)
from repro.runner.caching import (
    CachingClient,
    PlacementBatch,
    hitmask_fingerprint,
)
from repro.runner.fingerprint import (
    array_digest,
    canonicalize,
    digest,
    experiment_fingerprint,
    trace_fingerprint,
    workload_fingerprint,
)
from repro.runner.grid import (
    ENGINE_FACTORIES,
    NON_RETRYABLE,
    PLACEMENTS,
    PLANS,
    ClientConfig,
    ExperimentFailure,
    ExperimentMeta,
    ExperimentRunner,
    ExperimentSpec,
    FailureReport,
    GridOutcome,
    RetryPolicy,
    default_workers,
    split_fast_keys,
)
from repro.runner.shm import SharedTraceHandle, TracePlane

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SCHEMA_VERSION",
    "CacheStats",
    "CacheVerifyReport",
    "ResultCache",
    "ensure_cache",
    "CachingClient",
    "PlacementBatch",
    "hitmask_fingerprint",
    "array_digest",
    "canonicalize",
    "digest",
    "experiment_fingerprint",
    "trace_fingerprint",
    "workload_fingerprint",
    "ENGINE_FACTORIES",
    "NON_RETRYABLE",
    "PLACEMENTS",
    "PLANS",
    "ClientConfig",
    "ExperimentFailure",
    "ExperimentMeta",
    "ExperimentRunner",
    "ExperimentSpec",
    "FailureReport",
    "GridOutcome",
    "RetryPolicy",
    "SharedTraceHandle",
    "TracePlane",
    "default_workers",
    "split_fast_keys",
]
