"""On-disk content-addressed experiment cache.

Layout (all under the cache root, default ``.mnemo-cache/``)::

    .mnemo-cache/
      v1/                     <- schema version; bumping it orphans old entries
        results/<fp>.json     <- RunResult payloads
        traces/<fp>.npz       <- generated traces (keys / is_read / sizes)
        hitmasks/<fp>.npz     <- LLC hit masks keyed by (trace, LLC) digest

Fingerprints come from :mod:`repro.runner.fingerprint`; an entry is valid
forever because its key covers everything that determines its content.
Invalidation therefore reduces to three rules: (1) bumping
``SCHEMA_VERSION`` orphans every old entry, (2) any change to an
experiment's inputs changes its fingerprint, so stale entries are simply
never looked up again, and (3) ``clear()`` drops everything explicitly.

Writes are atomic (temp file + ``os.replace``) so concurrent workers in
a parallel grid can share one cache directory without corruption.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import tempfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace

#: Cache schema version; bump when the on-disk format or the
#: fingerprint canonicalisation changes incompatibly.
SCHEMA_VERSION = 1

#: Default cache directory name (relative to the working directory).
DEFAULT_CACHE_DIR = ".mnemo-cache"

_KINDS = ("results", "traces", "hitmasks")


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CacheStats:
    """Per-kind entry counts and byte totals of a cache directory."""

    def __init__(self, entries: dict[str, int], bytes_: dict[str, int]):
        self.entries = entries
        self.bytes = bytes_

    @property
    def total_entries(self) -> int:
        """Entries across all kinds."""
        return sum(self.entries.values())

    @property
    def total_bytes(self) -> int:
        """Bytes across all kinds."""
        return sum(self.bytes.values())

    def lines(self) -> list[str]:
        """Human-readable summary rows (kind, entries, size)."""
        out = []
        for kind in _KINDS:
            out.append(
                f"{kind:<10} {self.entries[kind]:>6} entries "
                f"{self.bytes[kind] / 1e6:>10.2f} MB"
            )
        out.append(
            f"{'total':<10} {self.total_entries:>6} entries "
            f"{self.total_bytes / 1e6:>10.2f} MB"
        )
        return out


class ResultCache:
    """Content-addressed store for run results, traces and hit masks.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).  Defaults to
        ``.mnemo-cache`` in the current working directory.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self._base = self.root / f"v{SCHEMA_VERSION}"

    # -- paths ----------------------------------------------------------------

    def _path(self, kind: str, fingerprint: str, suffix: str) -> Path:
        return self._base / kind / f"{fingerprint}{suffix}"

    def _ensure(self, kind: str) -> None:
        (self._base / kind).mkdir(parents=True, exist_ok=True)

    # -- run results ----------------------------------------------------------

    def get_result(self, fingerprint: str) -> RunResult | None:
        """Load a cached :class:`~repro.ycsb.client.RunResult` (or None)."""
        path = self._path("results", fingerprint, ".json")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        body = payload["result"]
        body["latency_percentiles_ns"] = {
            float(q): v for q, v in body["latency_percentiles_ns"].items()
        }
        return RunResult(**body)

    def put_result(self, fingerprint: str, result: RunResult) -> Path:
        """Persist a run result; returns the written path."""
        self._ensure("results")
        path = self._path("results", fingerprint, ".json")
        payload = {"schema": SCHEMA_VERSION, "result": asdict(result)}
        _atomic_write(path, json.dumps(payload, indent=1).encode())
        return path

    # -- traces ---------------------------------------------------------------

    def get_trace(self, fingerprint: str) -> Trace | None:
        """Load a cached generated trace (or None)."""
        path = self._path("traces", fingerprint, ".npz")
        try:
            with np.load(path, allow_pickle=False) as npz:
                return Trace(
                    name=str(npz["name"]),
                    keys=npz["keys"],
                    is_read=npz["is_read"],
                    record_sizes=npz["record_sizes"],
                )
        except (OSError, KeyError, ValueError):
            return None

    def put_trace(self, fingerprint: str, trace: Trace) -> Path:
        """Persist a generated trace; returns the written path."""
        self._ensure("traces")
        path = self._path("traces", fingerprint, ".npz")
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            name=np.asarray(trace.name),
            keys=trace.keys,
            is_read=trace.is_read,
            record_sizes=trace.record_sizes,
        )
        _atomic_write(path, buf.getvalue())
        return path

    # -- hit masks ------------------------------------------------------------

    def get_hitmask(self, fingerprint: str) -> np.ndarray | None:
        """Load a cached LLC hit mask (or None)."""
        path = self._path("hitmasks", fingerprint, ".npz")
        try:
            with np.load(path, allow_pickle=False) as npz:
                return npz["mask"]
        except (OSError, KeyError, ValueError):
            return None

    def put_hitmask(self, fingerprint: str, mask: np.ndarray) -> Path:
        """Persist an LLC hit mask; returns the written path."""
        self._ensure("hitmasks")
        path = self._path("hitmasks", fingerprint, ".npz")
        buf = io.BytesIO()
        np.savez_compressed(buf, mask=np.asarray(mask, dtype=bool))
        _atomic_write(path, buf.getvalue())
        return path

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> CacheStats:
        """Entry counts and byte totals per kind (current schema only)."""
        entries = {}
        bytes_ = {}
        for kind in _KINDS:
            files = [
                p for p in (self._base / kind).glob("*")
                if not p.name.startswith(".tmp-")
            ] if (self._base / kind).is_dir() else []
            entries[kind] = len(files)
            bytes_[kind] = sum(p.stat().st_size for p in files)
        return CacheStats(entries, bytes_)

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        n = self.stats().total_entries
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return n


def ensure_cache(cache: "ResultCache | str | Path | None") -> ResultCache | None:
    """Coerce a cache argument: pass through, build from a path, or None."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
