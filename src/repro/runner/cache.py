"""On-disk content-addressed experiment cache with integrity checking.

Layout (all under the cache root, default ``.mnemo-cache/``)::

    .mnemo-cache/
      v2/                     <- schema version; bumping it orphans old entries
        results/<fp>.json     <- RunResult payloads (checksummed JSON)
        traces/<fp>.npz       <- generated traces (keys / is_read / sizes)
        hitmasks/<fp>.npz     <- LLC hit masks keyed by (trace, LLC) digest
        verdicts/<fp>.json    <- guard ValidationVerdict payloads (JSON)
        quarantine/<kind>/    <- corrupt entries, moved aside for autopsy

Fingerprints come from :mod:`repro.runner.fingerprint`; an entry is valid
forever because its key covers everything that determines its content.
Invalidation therefore reduces to three rules: (1) bumping
``SCHEMA_VERSION`` orphans every old entry, (2) any change to an
experiment's inputs changes its fingerprint, so stale entries are simply
never looked up again, and (3) ``clear()`` drops everything explicitly.

Writes are atomic (temp file + ``os.replace``) so concurrent workers in
a parallel grid can share one cache directory without corruption.

Integrity: every entry carries a checksum of its own content — a JSON
canonical-form digest for results, the trace content fingerprint for
traces, an array digest for hit masks.  A read that fails to parse or
fails its checksum (a truncated write from a killed machine, bit rot, a
mangled rsync) is *quarantined* — moved to ``quarantine/<kind>/`` — and
reported as a miss, so the caller transparently recomputes it; strict
caches raise :class:`~repro.errors.CacheCorruptionError` instead.
``verify()`` walks every entry up front (the ``python -m repro cache
verify`` CLI), and ``stats()`` counts what quarantine holds.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import tempfile
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.errors import CacheCorruptionError
from repro.runner.fingerprint import array_digest, trace_fingerprint
from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace

#: Cache schema version; bump when the on-disk format or the
#: fingerprint canonicalisation changes incompatibly.  v2 added
#: per-entry checksums.
SCHEMA_VERSION = 2

#: Default cache directory name (relative to the working directory).
DEFAULT_CACHE_DIR = ".mnemo-cache"

_KINDS = ("results", "traces", "hitmasks", "verdicts")

#: Errors ``np.load`` raises on truncated or mangled NPZ files.
_NPZ_ERRORS = (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile)


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _json_checksum(body) -> str:
    """SHA-256 of a JSON value in canonical form.

    Callers must pass a value that already round-tripped through JSON
    (string keys only), so writer and reader canonicalise identically.
    """
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- entry codecs ----------------------------------------------------------
#
# The on-the-wire form of every entry kind, shared by the file-tree cache
# below and the SQLite store (:mod:`repro.store`): results and verdicts
# are checksummed JSON envelopes, traces and hit masks are checksummed
# NPZ byte strings.  Decoders return ``(value, corruption_reason)``; a
# stale-schema envelope decodes to ``(None, None)`` — a miss, not
# corruption — so schema bumps orphan entries in both backends alike.
# Because both backends persist the identical encoded bytes, migrating
# entries between them is bit-preserving by construction.


def encode_result(result: RunResult) -> dict:
    """Envelope a run result as schema-stamped, checksummed JSON."""
    # round-trip through JSON so the stored checksum is computed on
    # exactly the value a reader will re-canonicalise (string keys)
    body = json.loads(json.dumps(asdict(result)))
    return {
        "schema": SCHEMA_VERSION,
        "checksum": _json_checksum(body),
        "result": body,
    }


def decode_result(payload) -> "tuple[RunResult | None, str | None]":
    """Validate a result envelope: ``(result, corruption reason)``."""
    if not isinstance(payload, dict):
        return None, "payload is not an object"
    if payload.get("schema") != SCHEMA_VERSION:
        return None, None  # stale schema: a miss, not corruption
    body = payload.get("result")
    checksum = payload.get("checksum")
    if not isinstance(body, dict) or not isinstance(checksum, str):
        return None, "missing result/checksum fields"
    if _json_checksum(body) != checksum:
        return None, "checksum mismatch"
    body = dict(body)
    try:
        body["latency_percentiles_ns"] = {
            float(q): v for q, v in body["latency_percentiles_ns"].items()
        }
        return RunResult(**body), None
    except (KeyError, TypeError, ValueError):
        return None, "malformed result body"


def encode_verdict(payload: dict) -> dict:
    """Envelope a guard-verdict payload as checksummed JSON."""
    # round-trip through JSON so the stored checksum is computed on
    # exactly the value a reader will re-canonicalise
    body = json.loads(json.dumps(payload))
    return {
        "schema": SCHEMA_VERSION,
        "checksum": _json_checksum(body),
        "verdict": body,
    }


def decode_verdict(payload) -> "tuple[dict | None, str | None]":
    """Validate a verdict envelope: ``(payload, corruption reason)``."""
    if not isinstance(payload, dict):
        return None, "payload is not an object"
    if payload.get("schema") != SCHEMA_VERSION:
        return None, None  # stale schema: a miss, not corruption
    body = payload.get("verdict")
    checksum = payload.get("checksum")
    if not isinstance(body, dict) or not isinstance(checksum, str):
        return None, "missing verdict/checksum fields"
    if _json_checksum(body) != checksum:
        return None, "checksum mismatch"
    return body, None


def encode_trace(trace: Trace) -> bytes:
    """Serialise a trace as a checksummed compressed NPZ byte string."""
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        name=np.asarray(trace.name),
        keys=trace.keys,
        is_read=trace.is_read,
        record_sizes=trace.record_sizes,
        checksum=np.asarray(trace_fingerprint(trace)),
    )
    return buf.getvalue()


def decode_trace(data: bytes) -> "tuple[Trace | None, str | None]":
    """Validate a trace NPZ byte string: ``(trace, corruption reason)``."""
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            trace = Trace(
                name=str(npz["name"]),
                keys=npz["keys"],
                is_read=npz["is_read"],
                record_sizes=npz["record_sizes"],
            )
            checksum = str(npz["checksum"])
    except _NPZ_ERRORS:
        return None, "truncated or unparseable NPZ"
    if trace_fingerprint(trace) != checksum:
        return None, "checksum mismatch"
    return trace, None


def encode_hitmask(mask: np.ndarray) -> bytes:
    """Serialise an LLC hit mask as a checksummed NPZ byte string."""
    mask = np.asarray(mask, dtype=bool)
    buf = io.BytesIO()
    np.savez_compressed(
        buf, mask=mask, checksum=np.asarray(array_digest(mask)),
    )
    return buf.getvalue()


def decode_hitmask(data: bytes) -> "tuple[np.ndarray | None, str | None]":
    """Validate a hit-mask NPZ byte string: ``(mask, corruption reason)``."""
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            mask = npz["mask"]
            checksum = str(npz["checksum"])
    except _NPZ_ERRORS:
        return None, "truncated or unparseable NPZ"
    if array_digest(mask) != checksum:
        return None, "checksum mismatch"
    return mask, None


class CacheStats:
    """Per-kind entry counts, byte totals and quarantine census."""

    def __init__(
        self,
        entries: dict[str, int],
        bytes_: dict[str, int],
        quarantined: dict[str, int] | None = None,
    ):
        self.entries = entries
        self.bytes = bytes_
        self.quarantined = quarantined or {kind: 0 for kind in _KINDS}

    @property
    def total_entries(self) -> int:
        """Entries across all kinds."""
        return sum(self.entries.values())

    @property
    def total_bytes(self) -> int:
        """Bytes across all kinds."""
        return sum(self.bytes.values())

    @property
    def total_quarantined(self) -> int:
        """Quarantined entries across all kinds."""
        return sum(self.quarantined.values())

    def lines(self) -> list[str]:
        """Human-readable summary rows (kind, entries, size)."""
        out = []
        for kind in _KINDS:
            out.append(
                f"{kind:<10} {self.entries[kind]:>6} entries "
                f"{self.bytes[kind] / 1e6:>10.2f} MB"
            )
        out.append(
            f"{'total':<10} {self.total_entries:>6} entries "
            f"{self.total_bytes / 1e6:>10.2f} MB"
        )
        if self.total_quarantined:
            out.append(
                f"{'quarantine':<10} {self.total_quarantined:>6} entries "
                f"(corrupt, will be recomputed on demand)"
            )
        return out


@dataclass(frozen=True)
class CacheVerifyReport:
    """Result of a full checksum walk over the cache."""

    checked: dict[str, int] = field(default_factory=dict)
    corrupt: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every checked entry passed its checksum."""
        return not any(self.corrupt.values())

    @property
    def total_checked(self) -> int:
        """Entries examined across all kinds."""
        return sum(self.checked.values())

    @property
    def total_corrupt(self) -> int:
        """Entries that failed integrity checks."""
        return sum(len(v) for v in self.corrupt.values())

    def lines(self) -> list[str]:
        """Human-readable verification summary."""
        out = []
        for kind in _KINDS:
            n_corrupt = len(self.corrupt.get(kind, ()))
            status = "ok" if n_corrupt == 0 else f"{n_corrupt} corrupt"
            out.append(
                f"{kind:<10} {self.checked.get(kind, 0):>6} checked  {status}"
            )
        out.append(
            f"{'total':<10} {self.total_checked:>6} checked  "
            + ("all entries intact" if self.ok
               else f"{self.total_corrupt} corrupt entries quarantined")
        )
        return out


class ResultCache:
    """Content-addressed store for run results, traces and hit masks.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).  Defaults to
        ``.mnemo-cache`` in the current working directory.
    strict:
        When True, reads of corrupt entries raise
        :class:`~repro.errors.CacheCorruptionError` (after
        quarantining) instead of silently recomputing.
    """

    def __init__(
        self, root: str | Path = DEFAULT_CACHE_DIR, strict: bool = False,
    ):
        self.root = Path(root)
        self.strict = strict
        self._base = self.root / f"v{SCHEMA_VERSION}"

    # -- paths ----------------------------------------------------------------

    def _path(self, kind: str, fingerprint: str, suffix: str) -> Path:
        return self._base / kind / f"{fingerprint}{suffix}"

    def _ensure(self, kind: str) -> None:
        (self._base / kind).mkdir(parents=True, exist_ok=True)

    # -- integrity ------------------------------------------------------------

    def _quarantine(self, kind: str, path: Path) -> None:
        telemetry.count("cache.quarantine", kind=kind)
        qdir = self._base / "quarantine" / kind
        qdir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:  # pragma: no cover - racing worker moved it first
            pass

    def _corrupt(self, kind: str, path: Path, reason: str) -> None:
        """Quarantine a corrupt entry; raise in strict mode.

        Returns None so getters can ``return self._corrupt(...)`` and
        the caller sees an ordinary miss, recomputing transparently.
        """
        telemetry.event(
            "cache.corrupt", kind=kind, entry=path.name, reason=reason,
        )
        self._quarantine(kind, path)
        if self.strict:
            raise CacheCorruptionError(f"{path}: {reason}")
        return None

    @staticmethod
    def _lookup(kind: str, hit: bool) -> None:
        """Count one cache probe's outcome (off-path telemetry)."""
        telemetry.count(
            "cache.lookup", kind=kind, outcome="hit" if hit else "miss",
        )

    # -- run results ----------------------------------------------------------

    def _load_result_file(self, path: Path):
        """Load + validate one result entry: (result, corruption reason)."""
        try:
            payload = json.loads(path.read_bytes())
        except OSError:
            return None, "unreadable"
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, "unparseable JSON"
        return decode_result(payload)

    def get_result(self, fingerprint: str) -> RunResult | None:
        """Load a cached :class:`~repro.ycsb.client.RunResult` (or None).

        Corrupt entries are quarantined and reported as a miss (strict
        caches raise :class:`~repro.errors.CacheCorruptionError`).
        """
        path = self._path("results", fingerprint, ".json")
        if not path.exists():
            self._lookup("results", hit=False)
            return None
        result, reason = self._load_result_file(path)
        if reason is not None:
            self._lookup("results", hit=False)
            return self._corrupt("results", path, reason)
        self._lookup("results", hit=result is not None)
        return result

    def put_result(self, fingerprint: str, result: RunResult) -> Path:
        """Persist a run result; returns the written path."""
        self._ensure("results")
        telemetry.count("cache.write", kind="results")
        path = self._path("results", fingerprint, ".json")
        payload = encode_result(result)
        _atomic_write(path, json.dumps(payload, indent=1).encode())
        return path

    # -- traces ---------------------------------------------------------------

    def _load_trace_file(self, path: Path):
        """Load + validate one trace entry: (trace, corruption reason)."""
        try:
            data = path.read_bytes()
        except OSError:
            return None, "unreadable"
        return decode_trace(data)

    def get_trace(self, fingerprint: str) -> Trace | None:
        """Load a cached generated trace (or None); quarantines corruption."""
        path = self._path("traces", fingerprint, ".npz")
        if not path.exists():
            self._lookup("traces", hit=False)
            return None
        trace, reason = self._load_trace_file(path)
        if reason is not None:
            self._lookup("traces", hit=False)
            return self._corrupt("traces", path, reason)
        self._lookup("traces", hit=True)
        return trace

    def put_trace(self, fingerprint: str, trace: Trace) -> Path:
        """Persist a generated trace; returns the written path."""
        self._ensure("traces")
        telemetry.count("cache.write", kind="traces")
        path = self._path("traces", fingerprint, ".npz")
        _atomic_write(path, encode_trace(trace))
        return path

    # -- guard verdicts -------------------------------------------------------

    def _load_verdict_file(self, path: Path):
        """Load + validate one verdict entry: (payload, corruption reason).

        Verdicts are stored as opaque checksummed JSON objects — the
        guard layer owns their structure
        (:meth:`repro.guard.validator.ValidationVerdict.to_payload`),
        the cache only guarantees integrity.
        """
        try:
            payload = json.loads(path.read_bytes())
        except OSError:
            return None, "unreadable"
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, "unparseable JSON"
        return decode_verdict(payload)

    def get_verdict(self, fingerprint: str) -> dict | None:
        """Load a cached guard-verdict payload (or None).

        Corrupt entries are quarantined and reported as a miss (strict
        caches raise :class:`~repro.errors.CacheCorruptionError`).
        """
        path = self._path("verdicts", fingerprint, ".json")
        if not path.exists():
            self._lookup("verdicts", hit=False)
            return None
        body, reason = self._load_verdict_file(path)
        if reason is not None:
            self._lookup("verdicts", hit=False)
            return self._corrupt("verdicts", path, reason)
        self._lookup("verdicts", hit=body is not None)
        return body

    def put_verdict(self, fingerprint: str, payload: dict) -> Path:
        """Persist a guard-verdict payload; returns the written path."""
        self._ensure("verdicts")
        telemetry.count("cache.write", kind="verdicts")
        path = self._path("verdicts", fingerprint, ".json")
        envelope = encode_verdict(payload)
        _atomic_write(path, json.dumps(envelope, indent=1).encode())
        return path

    # -- hit masks ------------------------------------------------------------

    def _load_hitmask_file(self, path: Path):
        """Load + validate one hit-mask entry: (mask, corruption reason)."""
        try:
            data = path.read_bytes()
        except OSError:
            return None, "unreadable"
        return decode_hitmask(data)

    def get_hitmask(self, fingerprint: str) -> np.ndarray | None:
        """Load a cached LLC hit mask (or None); quarantines corruption."""
        path = self._path("hitmasks", fingerprint, ".npz")
        if not path.exists():
            self._lookup("hitmasks", hit=False)
            return None
        mask, reason = self._load_hitmask_file(path)
        if reason is not None:
            self._lookup("hitmasks", hit=False)
            return self._corrupt("hitmasks", path, reason)
        self._lookup("hitmasks", hit=True)
        return mask

    def put_hitmask(self, fingerprint: str, mask: np.ndarray) -> Path:
        """Persist an LLC hit mask; returns the written path."""
        self._ensure("hitmasks")
        telemetry.count("cache.write", kind="hitmasks")
        path = self._path("hitmasks", fingerprint, ".npz")
        _atomic_write(path, encode_hitmask(mask))
        return path

    # -- maintenance ----------------------------------------------------------

    def _entries(self, kind: str) -> list[Path]:
        directory = self._base / kind
        if not directory.is_dir():
            return []
        return sorted(
            p for p in directory.iterdir() if not p.name.startswith(".tmp-")
        )

    def stats(self) -> CacheStats:
        """Entry counts, byte totals and quarantine census (current schema)."""
        entries = {}
        bytes_ = {}
        quarantined = {}
        for kind in _KINDS:
            files = self._entries(kind)
            entries[kind] = len(files)
            bytes_[kind] = sum(p.stat().st_size for p in files)
            qdir = self._base / "quarantine" / kind
            quarantined[kind] = (
                sum(1 for _ in qdir.iterdir()) if qdir.is_dir() else 0
            )
        return CacheStats(entries, bytes_, quarantined)

    def verify(self, repair: bool = True) -> CacheVerifyReport:
        """Walk every entry and validate its checksum.

        With ``repair=True`` (default) corrupt entries are moved to
        quarantine so subsequent runs recompute them; with
        ``repair=False`` the walk only reports.
        """
        loaders = {
            "results": self._load_result_file,
            "traces": self._load_trace_file,
            "hitmasks": self._load_hitmask_file,
            "verdicts": self._load_verdict_file,
        }
        checked = {}
        corrupt = {}
        for kind in _KINDS:
            bad = []
            files = self._entries(kind)
            checked[kind] = len(files)
            for path in files:
                _, reason = loaders[kind](path)
                if reason is not None:
                    bad.append(path.name)
                    if repair:
                        self._quarantine(kind, path)
            corrupt[kind] = tuple(bad)
        return CacheVerifyReport(checked=checked, corrupt=corrupt)

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        n = self.stats().total_entries
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return n


#: File-name suffixes that make a cache path mean "SQLite store".
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: The 16-byte magic every SQLite database file starts with.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def is_sqlite_path(path: Path) -> bool:
    """True when *path* names a SQLite store (by suffix or file magic)."""
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return True
    if not path.is_file():
        return False
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


def ensure_cache(cache: "ResultCache | str | Path | None") -> ResultCache | None:
    """Coerce a cache argument: pass through, build from a path, or None.

    Paths naming a SQLite database (by suffix — ``.db`` / ``.sqlite`` /
    ``.sqlite3`` — or by file magic) build the durable
    :class:`~repro.store.SQLiteStore`; anything else builds the v2
    file-tree cache.  The detection is what lets pool workers rebuild
    the coordinator's store from the bare path in the task payload.
    """
    if cache is None or isinstance(cache, ResultCache):
        return cache
    path = Path(cache)
    if is_sqlite_path(path):
        from repro.store import SQLiteStore

        return SQLiteStore(path)
    return ResultCache(path)
