"""Shared-memory trace plane for grouped sweep dispatch.

A sweep evaluates many placements over *few* traces, yet the per-cell
pool path re-materialises each trace in every worker for every task —
either re-reading the compressed trace cache from disk or regenerating
the trace outright.  The trace plane removes that cost: the coordinator
publishes each distinct trace's arrays (``keys``, ``is_read``,
``record_sizes``) **once** into a :mod:`multiprocessing.shared_memory`
segment, and workers attach zero-copy read-only views, memoized per
process so a warm pool pays the attach exactly once per trace.

Ownership and cleanup are deliberately one-sided:

- the :class:`TracePlane` (coordinator side) *owns* every segment it
  publishes.  Segments persist across retry rounds and across sweeps
  (that persistence is the warm-pool win) and are unlinked when the
  plane is closed — the runner closes it from ``close()``, a
  ``weakref.finalize`` and the CLI's ``finally``, and the coordinator's
  own :mod:`multiprocessing.resource_tracker` covers abnormal exits;
- workers never unlink.  Attaching registers the segment with the
  attaching process's resource tracker (Python 3.11 has no opt-out).
  Fork-started workers *share* the coordinator's tracker process, so
  their registration is an idempotent no-op that must be left alone —
  unregistering would strip the coordinator's own entry.  Only a
  process with its *own* tracker (spawn workers, unrelated attachers)
  unregisters, lest its tracker tear the segment down at exit.  The
  handle carries the publisher's tracker pid so :meth:`attach` can
  tell the two apart.

A :class:`SharedTraceHandle` is a tiny picklable descriptor (segment
name, dtypes, shapes, offsets, trace content digest) — the only thing
that crosses the pool boundary.  Attach failures are non-fatal by
design: the grouped worker falls back to materialising the trace from
the workload spec, so a vanished segment degrades performance, never
correctness.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro import telemetry
from repro.ycsb.workload import Trace

#: Byte alignment of each array inside a segment.
_ALIGN = 64

#: Per-process attach memo capacity (traces, not bytes; traces are the
#: unit a sweep groups by and sweeps rarely span more than a handful).
_ATTACH_CAP = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _tracker_pid() -> int | None:
    """PID of this process's resource-tracker daemon (None if not up)."""
    return getattr(resource_tracker._resource_tracker, "_pid", None)


@dataclass(frozen=True)
class _Field:
    """Layout of one array inside a shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedTraceHandle:
    """Picklable descriptor of one published trace.

    ``digest`` is the trace's content fingerprint — the key worker-side
    memos (attach memo, kernel memo, client trace-digest memo) are
    primed with, so workers never re-hash a shared trace.
    """

    segment: str
    trace_name: str
    digest: str
    fields: tuple[_Field, ...]
    nbytes: int
    owner_pid: int
    tracker_pid: int | None = None

    def attach(self) -> tuple[Trace, shared_memory.SharedMemory]:
        """Zero-copy read-only :class:`Trace` over the shared segment.

        Returns the trace *and* the attached segment object: the arrays
        view the segment's buffer, so the caller must keep the segment
        referenced for as long as the trace lives.
        """
        shm = shared_memory.SharedMemory(name=self.segment)
        # Python 3.11 always registers an attach with the resource
        # tracker, which would unlink the coordinator-owned segment when
        # this process exits.  When this process shares the publisher's
        # tracker daemon (same process, or a fork-started pool worker),
        # that registration was an idempotent no-op protecting the
        # abnormal-exit cleanup — leave it be; unregistering would strip
        # the publisher's own entry.  A process with its *own* tracker
        # must step out of the picture: the plane owns the lifetime.
        if _tracker_pid() != self.tracker_pid:
            try:
                resource_tracker.unregister(
                    getattr(shm, "_name", "/" + shm.name), "shared_memory"
                )
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        arrays = {}
        for f in self.fields:
            arr = np.ndarray(
                f.shape, dtype=np.dtype(f.dtype), buffer=shm.buf,
                offset=f.offset,
            )
            arr.flags.writeable = False
            arrays[f.name] = arr
        trace = Trace(name=self.trace_name, **arrays)
        return trace, shm


class TracePlane:
    """Coordinator-owned registry of published trace segments.

    Publishing is idempotent per trace content digest, so repeated
    sweeps over the same workloads reuse the same segments.  The plane
    must be closed (directly, via the owning runner, or by the
    runner's finalizer) to unlink everything it created.
    """

    def __init__(self, prefix: str = "mnemo"):
        self._prefix = prefix
        self._segments: dict[
            str, tuple[shared_memory.SharedMemory, SharedTraceHandle]
        ] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, digest: str) -> bool:
        return digest in self._segments

    @property
    def segment_names(self) -> list[str]:
        """Names of every live segment (for leak checks and tests)."""
        return [shm.name for shm, _ in self._segments.values()]

    def publish(self, trace: Trace, digest: str | None = None) -> SharedTraceHandle:
        """Publish *trace* (idempotent per content digest); return its handle."""
        if digest is None:
            from repro.runner.fingerprint import trace_fingerprint

            digest = trace_fingerprint(trace)
        entry = self._segments.get(digest)
        if entry is not None:
            return entry[1]

        arrays = (
            ("keys", np.ascontiguousarray(trace.keys)),
            ("is_read", np.ascontiguousarray(trace.is_read)),
            ("record_sizes", np.ascontiguousarray(trace.record_sizes)),
        )
        fields = []
        offset = 0
        for name, arr in arrays:
            offset = _aligned(offset)
            fields.append(_Field(
                name=name, dtype=arr.dtype.str, shape=arr.shape,
                offset=offset,
            ))
            offset += arr.nbytes
        shm = self._create_segment(digest, max(offset, 1))
        for field, (_, arr) in zip(fields, arrays):
            dst = np.ndarray(
                field.shape, dtype=np.dtype(field.dtype), buffer=shm.buf,
                offset=field.offset,
            )
            dst[...] = arr
        handle = SharedTraceHandle(
            segment=shm.name, trace_name=trace.name, digest=digest,
            fields=tuple(fields), nbytes=offset, owner_pid=os.getpid(),
            tracker_pid=_tracker_pid(),
        )
        self._segments[digest] = (shm, handle)
        telemetry.count("runner.shm", op="publish")
        telemetry.event(
            "runner.shm_publish", segment=shm.name, trace=trace.name,
            bytes=offset,
        )
        return handle

    def _create_segment(self, digest: str, size: int):
        while True:
            name = f"{self._prefix}-{os.getpid()}-{digest[:8]}-{self._seq}"
            self._seq += 1
            try:
                return shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:  # stale name from a dead run: next seq
                continue

    def close(self) -> None:
        """Close and unlink every segment this plane published."""
        for shm, _ in self._segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - already closed
                pass
            # belt and braces: make sure the unlink's implicit tracker
            # unregister finds an entry even if some attacher stripped it
            try:
                resource_tracker.register(
                    getattr(shm, "_name", "/" + shm.name), "shared_memory"
                )
            except Exception:  # pragma: no cover - tracker internals moved
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


# -- worker side -------------------------------------------------------------

#: Per-process attach memo: segment name -> (trace, segment).  The
#: segment object must stay referenced while the trace's arrays are
#: alive, so it rides along in the memo entry.
_ATTACH_MEMO: "OrderedDict[str, tuple[Trace, shared_memory.SharedMemory]]" = (
    OrderedDict()
)


def attach_trace(handle: SharedTraceHandle) -> Trace:
    """Attach (memoized per process) to a published trace.

    A warm pool worker pays the attach once per trace; every later
    batch over the same segment is a dictionary lookup.  Raises if the
    segment is gone — callers are expected to fall back to
    materialising the trace themselves.
    """
    entry = _ATTACH_MEMO.get(handle.segment)
    if entry is not None:
        _ATTACH_MEMO.move_to_end(handle.segment)
        telemetry.count("runner.shm", op="memo_hit")
        return entry[0]
    trace, shm = handle.attach()
    telemetry.count("runner.shm", op="attach")
    _ATTACH_MEMO[handle.segment] = (trace, shm)
    while len(_ATTACH_MEMO) > _ATTACH_CAP:
        _, (_, old) = _ATTACH_MEMO.popitem(last=False)
        try:
            old.close()
        except BufferError:  # a view still lives; GC will reclaim it
            pass
    return trace
