"""A measuring client with content-addressed memoization.

:class:`CachingClient` is a drop-in :class:`~repro.ycsb.client.YCSBClient`
that consults a :class:`~repro.runner.cache.ResultCache` before measuring
and persists what it measures.  Because the base client derives its noise
streams from the experiment fingerprint, a cached result is *bit-identical*
to the measurement it replaced — caching changes wall-clock time, never
numbers.

Clients seeded with a live :class:`numpy.random.Generator` are inherently
non-reproducible, so they bypass the cache entirely (every call measures
fresh, exactly like the base class).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.kvstore.server import HybridDeployment
from repro.runner.cache import ResultCache, ensure_cache
from repro.runner.fingerprint import digest
from repro.ycsb.client import DEFAULT_PERCENTILES, RunResult, YCSBClient
from repro.ycsb.workload import Trace


def hitmask_fingerprint(trace_digest: str, capacity_bytes: int) -> str:
    """Cache key of an LLC hit mask (pure function of these two inputs)."""
    return digest({"trace": trace_digest, "capacity_bytes": capacity_bytes})[:32]


class PlacementBatch:
    """Batch-grained cached measurement of many placements of one trace.

    The batch kernel's construction (array gather, trace hash, LLC
    replay) is the only per-*batch* cost of ``execute_placements`` — and
    it is pure waste when every placement in the batch is already
    cached.  ``PlacementBatch`` probes the cache by fingerprint first
    (fingerprints come from
    :func:`~repro.runner.fingerprint.experiment_fingerprint_parts`, no
    kernel needed) and constructs the
    :class:`~repro.memsim.kernel.BatchKernel` lazily on the first miss,
    so warm sweeps skip the gather and the LLC replay entirely.

    Works over a caching or a plain client: without a cache (or with a
    live-generator seed, which is uncacheable) every placement measures
    fresh through the kernel with provenance ``"uncached"``.

    This is also the unit of work the grouped sweep dispatcher executes
    in pool workers — one ``PlacementBatch`` per (trace, engine) group,
    with ``path_label="grouped_batch"`` so the telemetry path mix shows
    planner batches distinctly.
    """

    def __init__(
        self, client, trace, profile, system, record_sizes=None,
        path_label: str = "batch_kernel",
    ):
        self.client = client
        self.trace = trace
        self.profile = profile
        self.system = system
        self.record_sizes = np.asarray(
            trace.record_sizes if record_sizes is None else record_sizes,
            dtype=np.int64,
        )
        if trace.n_keys != self.record_sizes.size:
            from repro.errors import WorkloadError

            raise WorkloadError(
                f"trace key space ({trace.n_keys}) does not match the "
                f"placement key space ({self.record_sizes.size})"
            )
        self.path_label = path_label
        self._kernel = None
        self._live_seed = isinstance(client.seed, np.random.Generator)
        if self._live_seed:
            telemetry.count("memsim.fallback", reason="live_seed")
        self._cache = (
            None if self._live_seed else getattr(client, "cache", None)
        )
        self._digest = (
            None if self._live_seed else client.trace_digest(trace)
        )

    def fingerprint(self, fast_mask: np.ndarray) -> str | None:
        """One placement's experiment fingerprint, without a kernel.

        Identical to what ``BatchKernel.fingerprint`` (and the
        per-deployment path) computes; ``None`` for live-seeded clients.
        """
        if self._live_seed:
            return None
        from repro.runner.fingerprint import experiment_fingerprint_parts

        mask = np.asarray(fast_mask)
        if mask.dtype != np.bool_ or mask.shape != (self.record_sizes.size,):
            from repro.errors import WorkloadError

            raise WorkloadError(
                f"placement mask must be bool of shape "
                f"({self.record_sizes.size},), got {mask.dtype} {mask.shape}"
            )
        return experiment_fingerprint_parts(
            self._digest, self.profile, mask, self.system, self.client,
        )

    def kernel(self):
        """The batch kernel, constructed on first use."""
        if self._kernel is None:
            from repro.memsim.kernel import BatchKernel

            self._kernel = BatchKernel(
                self.client, self.trace, self.profile, self.system,
                record_sizes=self.record_sizes, path_label=self.path_label,
            )
        return self._kernel

    def run_cached(self, fast_mask: np.ndarray) -> tuple[RunResult, str]:
        """Measure (or recall) one placement; returns (result, provenance)."""
        if self._cache is None:
            return self.kernel().run(fast_mask), "uncached"
        fp = self.fingerprint(fast_mask)
        result = self._cache.get_result(fp)
        if result is not None:
            self.client.cache_hits += 1
            return result, "cache"
        self.client.cache_misses += 1
        telemetry.count("cache.recompute", kind="results")
        result = self.kernel().run(fast_mask, fingerprint=fp)
        self._cache.put_result(fp, result)
        return result, "computed"


class CachingClient(YCSBClient):
    """YCSB client that memoizes measurements in an on-disk cache.

    Parameters
    ----------
    cache:
        A :class:`~repro.runner.cache.ResultCache`, a cache directory
        path, or None for a cache in the default location.  All other
        parameters match :class:`~repro.ycsb.client.YCSBClient`.
    """

    def __init__(
        self,
        cache: ResultCache | str | None = None,
        repeats: int = 3,
        noise_sigma: float = 0.01,
        use_llc: bool = False,
        percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
        seed=None,
        concurrency: int = 1,
        contention: float = 0.15,
        faults=None,
    ):
        super().__init__(
            repeats=repeats,
            noise_sigma=noise_sigma,
            use_llc=use_llc,
            percentiles=percentiles,
            seed=seed,
            concurrency=concurrency,
            contention=contention,
            faults=faults,
        )
        self.cache = ensure_cache(cache) or ResultCache()
        self.cache_hits = 0
        self.cache_misses = 0

    @classmethod
    def wrap(
        cls, client: YCSBClient, cache: ResultCache | str | None,
    ) -> "CachingClient":
        """A caching client with the same settings as *client*.

        Passing an already-caching client just repoints its cache.
        """
        return cls(
            cache=cache,
            repeats=client.repeats,
            noise_sigma=client.noise.sigma,
            use_llc=client.use_llc,
            percentiles=client.percentiles,
            seed=client.seed,
            concurrency=client.concurrency,
            contention=client.contention,
            faults=getattr(client, "faults", None),
        )

    def _cache_mask(self, trace: Trace, llc, trace_digest: str | None):
        """Hit mask lookup: in-memory memo, then disk, then the LRU."""
        if not self.use_llc or trace_digest is None:
            return super()._cache_mask(trace, llc, trace_digest)
        key = (trace_digest, llc.capacity_bytes)
        hits = self._hitmask_memo.get(key)
        if hits is not None:
            return hits, llc.hit_latency_ns
        fp = hitmask_fingerprint(trace_digest, llc.capacity_bytes)
        hits = self.cache.get_hitmask(fp)
        if hits is None:
            hits, _ = super()._cache_mask(trace, llc, trace_digest)
            self.cache.put_hitmask(fp, hits)
        else:
            hits.flags.writeable = False
            self._hitmask_memo[key] = hits
        return hits, llc.hit_latency_ns

    def execute(self, trace: Trace, deployment: HybridDeployment) -> RunResult:
        """Measure (or recall) *trace* against *deployment*.

        On a cache hit the stored result is returned without touching
        the simulator; on a miss the base client measures and the result
        is persisted under its experiment fingerprint.
        """
        if isinstance(self._seed, np.random.Generator):
            telemetry.count("memsim.fallback", reason="live_seed")
            return super().execute(trace, deployment)
        _, fp = self.experiment_fingerprint(trace, deployment)
        result = self.cache.get_result(fp)
        if result is not None:
            self.cache_hits += 1
            return result
        self.cache_misses += 1
        telemetry.count("cache.recompute", kind="results")
        result = super().execute(trace, deployment)
        self.cache.put_result(fp, result)
        return result

    def execute_placements(
        self, trace, fast_masks, profile, system, record_sizes=None,
    ):
        """Batch measurement with batch-grained cache probes.

        Each placement is looked up under the same experiment
        fingerprint :meth:`execute` uses, so batch and per-deployment
        measurements share one cache namespace; only the misses run
        through the kernel — and the kernel itself (gather + LLC
        replay) is only constructed if there *is* a miss, so fully warm
        batches cost probes alone (see :class:`PlacementBatch`).
        """
        batch = PlacementBatch(
            self, trace, profile, system, record_sizes=record_sizes
        )
        return [batch.run_cached(mask)[0] for mask in fast_masks]
