"""A measuring client with content-addressed memoization.

:class:`CachingClient` is a drop-in :class:`~repro.ycsb.client.YCSBClient`
that consults a :class:`~repro.runner.cache.ResultCache` before measuring
and persists what it measures.  Because the base client derives its noise
streams from the experiment fingerprint, a cached result is *bit-identical*
to the measurement it replaced — caching changes wall-clock time, never
numbers.

Clients seeded with a live :class:`numpy.random.Generator` are inherently
non-reproducible, so they bypass the cache entirely (every call measures
fresh, exactly like the base class).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.kvstore.server import HybridDeployment
from repro.runner.cache import ResultCache, ensure_cache
from repro.runner.fingerprint import digest
from repro.ycsb.client import DEFAULT_PERCENTILES, RunResult, YCSBClient
from repro.ycsb.workload import Trace


def hitmask_fingerprint(trace_digest: str, capacity_bytes: int) -> str:
    """Cache key of an LLC hit mask (pure function of these two inputs)."""
    return digest({"trace": trace_digest, "capacity_bytes": capacity_bytes})[:32]


class CachingClient(YCSBClient):
    """YCSB client that memoizes measurements in an on-disk cache.

    Parameters
    ----------
    cache:
        A :class:`~repro.runner.cache.ResultCache`, a cache directory
        path, or None for a cache in the default location.  All other
        parameters match :class:`~repro.ycsb.client.YCSBClient`.
    """

    def __init__(
        self,
        cache: ResultCache | str | None = None,
        repeats: int = 3,
        noise_sigma: float = 0.01,
        use_llc: bool = False,
        percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
        seed=None,
        concurrency: int = 1,
        contention: float = 0.15,
        faults=None,
    ):
        super().__init__(
            repeats=repeats,
            noise_sigma=noise_sigma,
            use_llc=use_llc,
            percentiles=percentiles,
            seed=seed,
            concurrency=concurrency,
            contention=contention,
            faults=faults,
        )
        self.cache = ensure_cache(cache) or ResultCache()
        self.cache_hits = 0
        self.cache_misses = 0

    @classmethod
    def wrap(
        cls, client: YCSBClient, cache: ResultCache | str | None,
    ) -> "CachingClient":
        """A caching client with the same settings as *client*.

        Passing an already-caching client just repoints its cache.
        """
        return cls(
            cache=cache,
            repeats=client.repeats,
            noise_sigma=client.noise.sigma,
            use_llc=client.use_llc,
            percentiles=client.percentiles,
            seed=client.seed,
            concurrency=client.concurrency,
            contention=client.contention,
            faults=getattr(client, "faults", None),
        )

    def _cache_mask(self, trace: Trace, llc, trace_digest: str | None):
        """Hit mask lookup: in-memory memo, then disk, then the LRU."""
        if not self.use_llc or trace_digest is None:
            return super()._cache_mask(trace, llc, trace_digest)
        key = (trace_digest, llc.capacity_bytes)
        hits = self._hitmask_memo.get(key)
        if hits is not None:
            return hits, llc.hit_latency_ns
        fp = hitmask_fingerprint(trace_digest, llc.capacity_bytes)
        hits = self.cache.get_hitmask(fp)
        if hits is None:
            hits, _ = super()._cache_mask(trace, llc, trace_digest)
            self.cache.put_hitmask(fp, hits)
        else:
            hits.flags.writeable = False
            self._hitmask_memo[key] = hits
        return hits, llc.hit_latency_ns

    def execute(self, trace: Trace, deployment: HybridDeployment) -> RunResult:
        """Measure (or recall) *trace* against *deployment*.

        On a cache hit the stored result is returned without touching
        the simulator; on a miss the base client measures and the result
        is persisted under its experiment fingerprint.
        """
        if isinstance(self._seed, np.random.Generator):
            telemetry.count("memsim.fallback", reason="live_seed")
            return super().execute(trace, deployment)
        _, fp = self.experiment_fingerprint(trace, deployment)
        result = self.cache.get_result(fp)
        if result is not None:
            self.cache_hits += 1
            return result
        self.cache_misses += 1
        telemetry.count("cache.recompute", kind="results")
        result = super().execute(trace, deployment)
        self.cache.put_result(fp, result)
        return result

    def execute_placements(
        self, trace, fast_masks, profile, system, record_sizes=None,
    ):
        """Batch measurement with per-placement cache probes.

        Each placement is looked up under the same experiment
        fingerprint :meth:`execute` uses, so batch and per-deployment
        measurements share one cache namespace; only the misses run
        through the kernel.
        """
        if isinstance(self._seed, np.random.Generator):
            telemetry.count("memsim.fallback", reason="live_seed")
            return super().execute_placements(
                trace, fast_masks, profile, system,
                record_sizes=record_sizes,
            )
        from repro.memsim.kernel import BatchKernel

        kernel = BatchKernel(
            self, trace, profile, system, record_sizes=record_sizes
        )
        results = []
        for mask in fast_masks:
            fp = kernel.fingerprint(mask)
            result = self.cache.get_result(fp)
            if result is not None:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                telemetry.count("cache.recompute", kind="results")
                result = kernel.run(mask, fingerprint=fp)
                self.cache.put_result(fp, result)
            results.append(result)
        return results
