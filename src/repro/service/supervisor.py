"""Crash-restart supervision for the guard service worker.

:class:`Supervisor` runs a target callable in a child process and
restarts it when it dies abnormally — the classic one-for-one
supervision tree leaf.  Restarts back off exponentially (deterministic
jitter, same :func:`~repro.rng.derive_seed` discipline as every other
backoff in the pipeline) so a crash-looping worker cannot busy-spin,
and a child that stays up for ``healthy_s`` earns its restart budget
back, so one bad patch a week does not slowly exhaust the allowance.

The supervisor itself is signal-agnostic: callers stop it with
:meth:`Supervisor.stop` (the CLI wires SIGTERM to that via
:mod:`repro.service.signals`), which forwards SIGTERM to the child and
waits for it to unwind gracefully before escalating to SIGKILL.  When
the child exposes a control socket, the supervisor asks for a graceful
``shutdown`` over it first (via
:class:`~repro.service.client.ServiceClient`), so an in-flight advice
request finishes before the signal ladder starts.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

from repro import telemetry
from repro.errors import ConfigurationError
from repro.rng import derive_seed

#: Grace period between SIGTERM and SIGKILL when stopping the child.
STOP_GRACE_S = 5.0


@dataclass(frozen=True)
class RestartPolicy:
    """How a supervisor reacts to its child dying.

    Parameters
    ----------
    max_restarts:
        Abnormal exits tolerated before the supervisor gives up
        (a child that keeps dying is a bug, not an outage to ride out).
    backoff_base_s / backoff_factor / backoff_cap_s:
        Restart *k* (1-based) waits
        ``min(backoff_base_s * backoff_factor**(k-1), backoff_cap_s)``
        seconds, scaled by deterministic jitter.
    healthy_s:
        A child that survives this long resets the restart counter —
        distinguishing a crash loop from occasional unrelated crashes.
    """

    max_restarts: int = 5
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap_s: float = 30.0
    healthy_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff_base_s must be >= 0 and backoff_factor >= 1"
            )
        if self.backoff_cap_s < 0 or self.healthy_s < 0:
            raise ConfigurationError(
                "backoff_cap_s and healthy_s must be >= 0"
            )

    def backoff_s(self, restart: int, label: str = "") -> float:
        """Sleep before restart *restart* (1-based), jittered and capped."""
        base = min(
            self.backoff_base_s * self.backoff_factor ** (restart - 1),
            self.backoff_cap_s,
        )
        u = derive_seed(None, f"{label}/restart/{restart}") / 2.0**32
        return base * (1.0 + 0.25 * u)


class Supervisor:
    """Runs *target* in a child process, restarting abnormal exits.

    Parameters
    ----------
    target:
        Module-level callable the child runs (must be picklable on
        spawn-based platforms).  A return or ``sys.exit(0)`` is a
        *normal* exit and ends supervision; any non-zero exit code or
        kill signal triggers a backoff restart.
    args:
        Positional arguments for *target*.
    policy:
        The :class:`RestartPolicy` in force.
    name:
        Label for telemetry and backoff derivation.
    control_socket:
        Optional path of the child's control socket; when set, a stop
        request first asks the child for a graceful ``shutdown`` over
        the socket and only escalates to SIGTERM/SIGKILL if the child
        does not unwind in time (or the request is refused — e.g. the
        daemon has auth tokens registered).
    """

    def __init__(
        self,
        target,
        args: tuple = (),
        policy: RestartPolicy = RestartPolicy(),
        name: str = "service",
        control_socket=None,
    ):
        self.target = target
        self.args = tuple(args)
        self.policy = policy
        self.name = name
        self.control_socket = control_socket
        self.restarts = 0
        self._stop = mp.Event()
        self._child: mp.Process | None = None

    # -- control ---------------------------------------------------------------

    def stop(self) -> None:
        """Request shutdown: stop restarting, let the wait loop SIGTERM
        the child (exactly once — a second SIGTERM could interrupt the
        child's graceful unwind)."""
        self._stop.set()

    @property
    def child_pid(self) -> int | None:
        """The live child's pid, or None."""
        child = self._child
        return child.pid if child is not None and child.is_alive() else None

    # -- the supervision loop --------------------------------------------------

    def _spawn(self) -> mp.Process:
        child = mp.Process(
            target=self.target, args=self.args,
            name=f"{self.name}-worker", daemon=False,
        )
        child.start()
        return child

    def _request_graceful_shutdown(self) -> bool:
        """Best-effort ``shutdown`` over the child's control socket.

        Returns True when the child acknowledged; any failure (no
        socket configured, daemon not listening yet, auth refusing an
        unauthenticated supervisor) just means the caller proceeds to
        the SIGTERM/SIGKILL ladder.
        """
        if self.control_socket is None:
            return False
        from repro.errors import ServiceError
        from repro.service.client import ClientPolicy, ServiceClient

        client = ServiceClient(
            self.control_socket,
            policy=ClientPolicy(max_attempts=1, timeout_s=1.0),
            label=f"{self.name}-supervisor",
        )
        try:
            reply = client.call("shutdown")
        except ServiceError:
            return False
        if reply.get("ok"):
            telemetry.event("service.child_shutdown_requested",
                            service=self.name)
            return True
        return False

    def _wait(self, child: mp.Process) -> int:
        """Join *child*, polling the stop flag; returns its exit code."""
        while child.is_alive():
            if self._stop.is_set():
                if self._request_graceful_shutdown():
                    child.join(timeout=STOP_GRACE_S)
                if child.is_alive():
                    child.terminate()
                    child.join(timeout=STOP_GRACE_S)
                if child.is_alive():  # pragma: no cover - stuck handler
                    child.kill()
                    child.join()
                break
            child.join(timeout=0.1)
        child.join()
        return child.exitcode if child.exitcode is not None else 0

    def run(self) -> int:
        """Supervise until normal exit, stop request, or budget exhaustion.

        Returns the child's final exit code (0 when stopped gracefully
        or the child finished cleanly).
        """
        self._stop.clear()
        self.restarts = 0
        code = 0
        while not self._stop.is_set():
            started = time.monotonic()
            self._child = self._spawn()
            telemetry.event(
                "service.child_started", service=self.name,
                pid=self._child.pid, restarts=self.restarts,
            )
            code = self._wait(self._child)
            uptime = time.monotonic() - started
            self._child = None
            if self._stop.is_set() or code == 0:
                break
            # abnormal exit: negative codes are kill signals
            telemetry.count("service.child_deaths")
            telemetry.event(
                "service.child_died", service=self.name,
                exit_code=code, uptime_s=round(uptime, 3),
            )
            if uptime >= self.policy.healthy_s:
                self.restarts = 0  # it earned its budget back
            self.restarts += 1
            if self.restarts > self.policy.max_restarts:
                telemetry.event(
                    "service.gave_up", service=self.name,
                    restarts=self.restarts - 1,
                )
                return code
            backoff = self.policy.backoff_s(self.restarts, label=self.name)
            telemetry.count("service.restarts")
            telemetry.event(
                "service.child_restarting", service=self.name,
                restart=self.restarts, backoff_s=round(backoff, 3),
            )
            # a stop request must cut the backoff short
            self._stop.wait(backoff)
        return 0 if self._stop.is_set() else code
