"""Resilient client for the served-advisor control socket.

:func:`~repro.service.serve.control_call` is one attempt; a real client
needs more, because a healthy daemon legitimately answers with
transient failures — ``overloaded`` when the admission queue is full,
a connection error during the short window of a supervisor restart.
:class:`ServiceClient` wraps the call in a bounded retry loop:

- **bounded exponential backoff** — attempt *k* waits
  ``min(base * factor**(k-1), cap)`` seconds, scaled by deterministic
  jitter (the same :func:`~repro.rng.derive_seed` discipline every
  backoff in this codebase uses, so two clients with different labels
  desynchronise but a given client retries reproducibly);
- **server-directed pacing** — a shed response carries the daemon's
  own ``retry_after_s`` estimate, which overrides the client's
  schedule when longer (the server knows its queue better);
- **a hard attempt budget** — after ``max_attempts`` the client raises
  :class:`~repro.errors.ServiceError` with the last failure, rather
  than retrying forever against a dead daemon.

Both consumers of the socket go through this module: the CLI's
``mnemo serve --control`` path and the
:class:`~repro.service.supervisor.Supervisor`'s graceful-shutdown
probe.  :func:`diagnose_unreachable` turns a refused connection into
an honest liveness story by reading the heartbeat file: *never
started*, *stopped gracefully*, or *dead since <mtime>*.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.errors import ConfigurationError, ServiceError
from repro.rng import derive_seed
from repro.service.serve import control_call

#: Response errors worth retrying: the daemon is alive but busy.
RETRYABLE_ERRORS = ("overloaded",)


@dataclass(frozen=True)
class ClientPolicy:
    """Retry discipline for one :class:`ServiceClient`.

    Parameters
    ----------
    max_attempts:
        Total tries (first attempt included) before giving up.
    backoff_base_s / backoff_factor / backoff_cap_s:
        Attempt *k* (1-based) retries after
        ``min(backoff_base_s * backoff_factor**(k-1), backoff_cap_s)``
        seconds, scaled by deterministic jitter.
    timeout_s:
        Socket timeout per attempt (connect + response read).
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff_base_s must be >= 0 and backoff_factor >= 1"
            )
        if self.backoff_cap_s < 0 or self.timeout_s <= 0:
            raise ConfigurationError(
                "backoff_cap_s must be >= 0 and timeout_s positive"
            )

    def backoff_s(self, attempt: int, label: str = "") -> float:
        """Sleep before retrying after attempt *attempt* (1-based)."""
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_cap_s,
        )
        u = derive_seed(None, f"{label}/attempt/{attempt}") / 2.0**32
        return base * (1.0 + 0.25 * u)


class ServiceClient:
    """Control-socket caller with bounded, jittered retries.

    Parameters
    ----------
    socket_path:
        The daemon's unix control socket.
    token:
        Auth token attached to every request (None while the daemon
        runs in open bootstrap mode).
    policy:
        The :class:`ClientPolicy` in force.
    label:
        Name folded into the jitter derivation, so concurrent clients
        spread their retries instead of stampeding in lockstep.
    """

    def __init__(self, socket_path, token: str | None = None,
                 policy: ClientPolicy = ClientPolicy(),
                 label: str = "client"):
        self.socket_path = Path(socket_path)
        self.token = token
        self.policy = policy
        self.label = label
        self.attempts = 0

    def call(self, op: str, **fields) -> dict:
        """Send one op, retrying transient failures; returns the reply.

        Retries connection-level errors (daemon restarting) and
        ``overloaded`` sheds (honouring the server's ``retry_after_s``
        when it is longer than the client's own schedule).  Any other
        reply — including structured errors like ``unauthorized`` or
        ``deadline_exceeded`` — is returned to the caller as-is; only
        an exhausted retry budget raises :class:`ServiceError`.
        """
        request = {"op": op, **fields}
        if self.token is not None:
            request.setdefault("token", self.token)
        last_failure = "no attempts made"
        for attempt in range(1, self.policy.max_attempts + 1):
            self.attempts = attempt
            try:
                response = control_call(
                    self.socket_path, request, timeout=self.policy.timeout_s,
                )
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                last_failure = f"{type(exc).__name__}: {exc}"
                telemetry.count("client.connect_failures", op=op)
                wait = self.policy.backoff_s(attempt, label=self.label)
            else:
                if response.get("ok") or (
                    response.get("error") not in RETRYABLE_ERRORS
                ):
                    return response
                last_failure = f"server shed the request: {response}"
                telemetry.count("client.sheds", op=op)
                wait = max(
                    self.policy.backoff_s(attempt, label=self.label),
                    float(response.get("retry_after_s", 0.0)),
                )
            if attempt < self.policy.max_attempts:
                telemetry.count("client.retries", op=op)
                time.sleep(wait)
        raise ServiceError(
            f"{op!r} failed after {self.policy.max_attempts} attempts "
            f"against {self.socket_path}: {last_failure}"
        )


def diagnose_unreachable(socket_path, heartbeat_path, error) -> str:
    """Explain an unreachable daemon from its heartbeat file.

    Turns a bare connection error into the liveness story an operator
    actually needs: the daemon *never started* (no heartbeat), *stopped
    gracefully* (heartbeat stamped ``stopped``), or *died* (heartbeat
    says running but nobody answers — report how stale it is).
    """
    socket_path = Path(socket_path)
    heartbeat_path = Path(heartbeat_path)
    base = f"no service listening on {socket_path}"
    try:
        raw = heartbeat_path.read_text(encoding="utf-8")
        doc = json.loads(raw)
    except (OSError, json.JSONDecodeError):
        return (
            f"{base}: no heartbeat at {heartbeat_path} — "
            f"the service was never started here ({error})"
        )
    mtime = heartbeat_path.stat().st_mtime
    when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(mtime))
    if doc.get("status") == "stopped":
        return (
            f"{base}: the service (pid {doc.get('pid')}) stopped "
            f"gracefully at {when} after {doc.get('ticks', 0)} ticks"
        )
    age = max(0.0, time.time() - mtime)
    return (
        f"{base}: heartbeat says pid {doc.get('pid')} was "
        f"{doc.get('status', 'running')} but nothing answers — daemon "
        f"dead since {when} ({age:.0f}s ago, {doc.get('ticks', 0)} ticks "
        f"served); a supervisor may be restarting it ({error})"
    )
