"""The request plane: deadlines, admission control, and token auth.

``mnemo serve`` answers advice requests (``size`` / ``validate`` /
``drift``) from many concurrent clients.  Serving advice is orders of
magnitude heavier than answering ``ping``, so the heavy ops run behind
an explicit robustness envelope built from three small primitives:

- :class:`Deadline` — a monotonic-clock budget each request carries.
  Advisor code calls :meth:`Deadline.check` at its cancellation
  checkpoints; an expired budget raises
  :class:`~repro.errors.DeadlineExceededError`, which the plane
  translates into a structured ``deadline_exceeded`` response instead
  of burning a worker on an answer nobody is waiting for.
- :class:`RequestPlane` — a bounded worker pool behind a bounded
  admission queue.  When the queue is full the request is *shed*
  immediately with ``{"ok": false, "error": "overloaded"}`` and a
  ``retry_after_s`` hint derived from the observed service time — the
  client backs off (:mod:`repro.service.client`) instead of piling onto
  a saturated daemon (load shedding, not unbounded queueing).
- :class:`AuthRegistry` — SHA-256 token digests with constant-time
  comparison.  The registry journals nothing itself; the service
  appends ``auth_token_registered`` / ``auth_token_revoked`` oplog
  entries (digests only, never raw tokens) and
  :meth:`AuthRegistry.replay` rebuilds the registry from that journal
  after a restart.  A registry with no tokens is *open* (single-tenant
  bootstrap); registering the first token locks every op but ``ping``.

Everything here is deliberately free of advisor knowledge — the plane
runs closures, the registry compares digests — so the pieces are
testable in microseconds and reusable by future fleet endpoints.
"""

from __future__ import annotations

import hashlib
import hmac
import queue
import threading
import time

from repro import telemetry
from repro.errors import ConfigurationError, DeadlineExceededError

#: Extra seconds an I/O thread waits past a request's deadline for the
#: worker to deliver the structured deadline response itself.
COMPLETION_GRACE_S = 2.0

#: Minimum accepted auth-token length (shorter tokens are typos).
MIN_TOKEN_LENGTH = 8

#: Floor for the ``retry_after_s`` hint in shed responses.
MIN_RETRY_AFTER_S = 0.05


class Deadline:
    """A monotonic-clock budget with cooperative cancellation checks.

    Parameters
    ----------
    budget_s:
        Seconds from construction until the deadline expires.
    """

    __slots__ = ("budget_s", "_expires")

    def __init__(self, budget_s: float):
        if budget_s <= 0:
            raise ConfigurationError(
                f"deadline budget must be positive, got {budget_s}"
            )
        self.budget_s = float(budget_s)
        self._expires = time.monotonic() + self.budget_s

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self._expires - time.monotonic())

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return time.monotonic() >= self._expires

    def check(self, where: str = "") -> None:
        """Cooperative cancellation point: raise when expired.

        Advisor code calls this between expensive stages; *where* names
        the checkpoint in the error (and the structured response).
        """
        if self.expired:
            telemetry.count("serve.deadline_exceeded", where=where or "-")
            raise DeadlineExceededError(
                f"deadline ({self.budget_s:g}s) exceeded"
                + (f" at {where}" if where else "")
            )


def token_digest(token: str) -> str:
    """SHA-256 hex digest of a raw token (what the oplog records)."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class AuthRegistry:
    """Registered token digests with constant-time authorization.

    The registry stores SHA-256 digests only; raw tokens never touch
    memory longer than one call.  An empty registry authorizes everyone
    (bootstrap mode) — registering the first token flips the service to
    locked-down multi-tenant operation.
    """

    def __init__(self) -> None:
        self._digests: set[str] = set()
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """True once at least one token is registered (auth enforced)."""
        with self._lock:
            return bool(self._digests)

    @property
    def n_tokens(self) -> int:
        """How many tokens are currently registered."""
        with self._lock:
            return len(self._digests)

    def register(self, token: str) -> str:
        """Register a raw token; returns the digest the oplog records."""
        if not isinstance(token, str) or len(token) < MIN_TOKEN_LENGTH:
            raise ConfigurationError(
                f"tokens must be strings of >= {MIN_TOKEN_LENGTH} characters"
            )
        digest = token_digest(token)
        with self._lock:
            self._digests.add(digest)
        return digest

    def revoke_digest(self, digest: str) -> bool:
        """Remove a token by digest; True when it was registered."""
        with self._lock:
            try:
                self._digests.remove(digest)
                return True
            except KeyError:
                return False

    def revoke(self, token: str) -> bool:
        """Remove a raw token; True when it was registered."""
        return self.revoke_digest(token_digest(str(token)))

    def authorize(self, token: str | None) -> bool:
        """Constant-time check of a presented token.

        Every registered digest is compared (no early exit on a match),
        so response timing leaks neither membership nor prefix length.
        An inactive registry authorizes any caller.
        """
        with self._lock:
            digests = tuple(self._digests)
        if not digests:
            return True
        if not isinstance(token, str) or not token:
            return False
        presented = token_digest(token)
        ok = False
        for digest in digests:
            ok |= hmac.compare_digest(presented, digest)
        return ok

    @classmethod
    def replay(cls, oplog, run_id: str) -> "AuthRegistry":
        """Rebuild a registry from journaled register/revoke events.

        Folds the run's ``auth_token_registered`` /
        ``auth_token_revoked`` oplog entries in append order, so the
        registry survives daemon restarts without persisting tokens
        anywhere but the audit trail.
        """
        from repro.store.oplog import (
            KIND_TOKEN_REGISTERED, KIND_TOKEN_REVOKED,
        )

        registry = cls()
        for entry in oplog.entries(run_id=run_id):
            digest = entry.payload.get("token_sha256")
            if not digest:
                continue
            if entry.kind == KIND_TOKEN_REGISTERED:
                registry._digests.add(digest)
            elif entry.kind == KIND_TOKEN_REVOKED:
                registry._digests.discard(digest)
        return registry


class _Job:
    """One queued request: the closure, its deadline, and the rendezvous."""

    __slots__ = ("op", "fn", "deadline", "done", "response", "abandoned")

    def __init__(self, op: str, fn, deadline: Deadline):
        self.op = op
        self.fn = fn
        self.deadline = deadline
        self.done = threading.Event()
        self.response: dict | None = None
        self.abandoned = False


def shed_response(op: str, retry_after_s: float, queue_depth: int) -> dict:
    """The structured load-shedding reply (documented in docs/SERVE.md)."""
    return {
        "ok": False,
        "op": op,
        "error": "overloaded",
        "retry_after_s": round(retry_after_s, 3),
        "queue_depth": queue_depth,
    }


def deadline_response(op: str, budget_s: float, where: str = "") -> dict:
    """The structured deadline-exceeded reply."""
    body = {
        "ok": False,
        "op": op,
        "error": "deadline_exceeded",
        "deadline_s": round(budget_s, 3),
    }
    if where:
        body["where"] = where
    return body


class RequestPlane:
    """Bounded worker pool with admission control and load shedding.

    Parameters
    ----------
    workers:
        Worker threads executing advice requests.
    queue_depth:
        Admission-queue capacity; a submit against a full queue sheds
        immediately instead of queueing unboundedly.
    name:
        Thread-name prefix (diagnostics).
    """

    def __init__(self, workers: int = 2, queue_depth: int = 8,
                 name: str = "serve"):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        self.workers = workers
        self.queue_depth = queue_depth
        self.name = name
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._avg_service_s = 0.1  # EWMA seed; refined by real requests
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "RequestPlane":
        """Spin up the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            self._closed = False
            for i in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self.name}-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop accepting work and join the workers (idempotent)."""
        with self._lock:
            threads, self._threads = self._threads, []
            self._closed = True
        for _ in threads:
            try:
                self._queue.put_nowait(None)  # one sentinel per worker
            except queue.Full:  # pragma: no cover - drained by workers
                pass
        for thread in threads:
            thread.join(timeout=timeout_s)

    # -- admission -------------------------------------------------------------

    def retry_after_s(self) -> float:
        """Backoff hint for shed clients: queue drain time at current rate."""
        with self._lock:
            avg = self._avg_service_s
        depth = self._queue.qsize()
        return max(MIN_RETRY_AFTER_S, (depth + 1) * avg / self.workers)

    def submit(self, op: str, fn, deadline: Deadline) -> dict:
        """Run *fn* on a worker; returns its response (or a shed/deadline one).

        *fn* is a zero-argument callable returning a response dict; it
        is expected to call ``deadline.check()`` at its own checkpoints.
        The calling I/O thread blocks until the worker answers or the
        deadline (plus a small grace) passes — whichever comes first.
        """
        if self._closed:
            return {"ok": False, "op": op, "error": "shutting_down"}
        job = _Job(op, fn, deadline)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            telemetry.count("serve.shed", op=op)
            return shed_response(op, self.retry_after_s(), self.queue_depth)
        telemetry.gauge("serve.queue_depth", float(self._queue.qsize()))
        if job.done.wait(timeout=deadline.remaining() + COMPLETION_GRACE_S):
            return job.response  # type: ignore[return-value]
        # the worker is wedged past the grace period: abandon the job
        job.abandoned = True
        telemetry.count("serve.deadline_exceeded", where="abandoned")
        return deadline_response(op, deadline.budget_s, where="abandoned")

    # -- the workers -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # close() sentinel
                return
            telemetry.gauge("serve.queue_depth", float(self._queue.qsize()))
            if job.deadline.expired:
                # it aged out while queued; don't burn compute on it
                telemetry.count("serve.deadline_exceeded", where="queued")
                job.response = deadline_response(
                    job.op, job.deadline.budget_s, where="queued",
                )
                job.done.set()
                continue
            t0 = time.perf_counter()
            try:
                response = job.fn()
            except DeadlineExceededError as exc:
                response = deadline_response(
                    job.op, job.deadline.budget_s, where=str(exc),
                )
            except Exception as exc:  # noqa: BLE001 - a request must never
                # kill a worker thread; the advisor wrapper normally
                # degrades gracefully before this backstop is reached
                telemetry.count("serve.worker_errors", op=job.op)
                response = {
                    "ok": False, "op": job.op,
                    "error": "internal_error", "detail": str(exc),
                }
            elapsed = time.perf_counter() - t0
            with self._lock:
                self._avg_service_s = (
                    0.8 * self._avg_service_s + 0.2 * elapsed
                )
            if not job.abandoned:
                job.response = response
                job.done.set()
