"""The supervised guard service: scheduled guard ticks, observable over a socket.

``mnemo serve`` turns the PR 4 guard loop from a cron-invoked one-shot
into a long-lived service.  :class:`GuardService` runs *ticks* — one
drift + margin (+ periodic validation) pass each — on a schedule, and
makes itself observable and controllable while it runs:

- a **heartbeat file**, rewritten atomically after every tick, carries
  pid, tick count, last exit code and timestamps — liveness checks are
  one ``cat`` away and a crash leaves an honestly stale heartbeat, not
  a torn one;
- a **unix socket control API** (JSON, one request line, one response
  line) answers ``ping`` / ``status`` / ``metrics`` / ``shutdown``;
  ``metrics`` returns the telemetry registry in Prometheus text
  exposition format, so a scrape is one ``nc`` away;
- every tick is journaled to the store's **oplog** (``guard_tick``
  events under the service's run id) when a store is configured, so
  the service's history survives the process.

Shutdown is graceful on SIGTERM/SIGINT (via
:mod:`repro.service.signals`) and on a socket ``shutdown`` request:
the loop finishes its current tick, stamps the heartbeat ``stopped``,
journals ``service_stopped``, closes the store and removes the socket.
Crash-restart supervision lives one level up, in
:class:`repro.service.supervisor.Supervisor`.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.errors import ConfigurationError, StoreError
from repro.service.signals import TerminationSignal, handle_termination

#: Default run directory for the heartbeat file and control socket.
DEFAULT_RUNDIR = ".mnemo-serve"


@dataclass(frozen=True)
class ServeConfig:
    """Everything one guard service instance needs to know.

    Parameters
    ----------
    workload / engine / slo:
        What the guard loop watches (mirrors ``mnemo guard``).
    interval_s:
        Seconds between tick starts.
    validate_every:
        Run the full simulator replay every Nth tick (1 = every tick,
        0 = drift + margin only — the cheap mode for tight intervals).
    repeats / seed / downsample:
        Measurement settings forwarded to the profiling client.
    store:
        Optional path of the SQLite store that journals service events
        (and memoizes guard measurements).
    rundir:
        Directory for the heartbeat file and control socket.
    run_id:
        The oplog run id service events are journaled under.
    """

    workload: str = "trending"
    engine: str = "redis"
    slo: float = 0.10
    interval_s: float = 60.0
    validate_every: int = 1
    repeats: int = 3
    seed: int | None = None
    downsample: float = 0.0
    store: str | None = None
    rundir: str = DEFAULT_RUNDIR
    run_id: str = "serve"

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be positive, got {self.interval_s}"
            )
        if self.validate_every < 0:
            raise ConfigurationError(
                f"validate_every must be >= 0, got {self.validate_every}"
            )

    @property
    def heartbeat_path(self) -> Path:
        """Where the heartbeat JSON lives."""
        return Path(self.rundir) / "heartbeat.json"

    @property
    def socket_path(self) -> Path:
        """Where the control socket lives."""
        return Path(self.rundir) / "control.sock"


def default_tick(config: ServeConfig):
    """Build the real guard tick: profile once, then guard per call.

    Returns a zero-argument callable producing the tick's exit code
    (the :class:`~repro.guard.loop.GuardOutcome` convention: 0 clean,
    1 warnings, 3 action needed).  The profile is measured once at
    service start — the service watches one recommendation; replacing
    the recommendation is a restart.
    """
    from repro.core import Mnemo
    from repro.guard import ErrorBudget
    from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
    from repro.ycsb import (
        YCSBClient, downsample, generate_trace, workload_by_name,
    )

    engines = {
        "redis": RedisLike, "memcached": MemcachedLike,
        "dynamodb": DynamoLike,
    }
    planning = generate_trace(workload_by_name(config.workload))
    if config.downsample and config.downsample > 1:
        planning = downsample(
            planning, factor=config.downsample, seed=config.seed
        )
    mnemo = Mnemo(
        engine_factory=engines[config.engine],
        client=YCSBClient(repeats=config.repeats, seed=config.seed),
        cache=config.store,
    )
    report = mnemo.profile(planning)
    loop = mnemo.guard_loop(budget=ErrorBudget())
    ticks = {"n": 0}

    def tick() -> int:
        ticks["n"] += 1
        validate = (
            config.validate_every > 0
            and ticks["n"] % config.validate_every == 0
        )
        outcome = loop.run(
            report, planning, live_trace=planning,
            max_slowdown=config.slo, validate=validate,
        )
        return outcome.exit_code

    return tick


# -- control socket ------------------------------------------------------------


class _ControlHandler(socketserver.StreamRequestHandler):
    """One JSON request line in, one JSON response line out."""

    def handle(self) -> None:  # pragma: no cover - exercised via requests
        service = self.server.service  # type: ignore[attr-defined]
        try:
            line = self.rfile.readline(65536).decode("utf-8").strip()
            request = json.loads(line) if line else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            request = None
        response = service._control(request)
        self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")


class _ControlServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


def control_call(socket_path, request: dict, timeout: float = 5.0) -> dict:
    """Send one control request to a running service; returns its reply."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode("utf-8"))


# -- the service ---------------------------------------------------------------


class GuardService:
    """The schedulable, observable guard loop.

    Parameters
    ----------
    config:
        The :class:`ServeConfig` in force.
    tick_fn:
        Zero-argument callable returning an int exit code per tick;
        defaults to the real guard tick (:func:`default_tick`), built
        lazily on :meth:`run` so constructing a service is cheap.
    store:
        An open store to journal into; defaults to opening
        ``config.store`` (when set) on :meth:`run`.
    """

    def __init__(self, config: ServeConfig, tick_fn=None, store=None):
        self.config = config
        self.tick_fn = tick_fn
        self.store = store
        self._owns_store = store is None
        self.ticks = 0
        self.last_exit_code: int | None = None
        self.started_unix: float | None = None
        self._stop = threading.Event()
        self._server: _ControlServer | None = None

    # -- control ---------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the run loop to finish the current tick and exit."""
        self._stop.set()

    def status(self) -> dict:
        """The heartbeat document (also served over the socket)."""
        now = time.time()
        return {
            "pid": os.getpid(),
            "run_id": self.config.run_id,
            "status": "stopping" if self._stop.is_set() else "running",
            "workload": self.config.workload,
            "engine": self.config.engine,
            "interval_s": self.config.interval_s,
            "ticks": self.ticks,
            "last_exit_code": self.last_exit_code,
            "started_unix": self.started_unix,
            "updated_unix": now,
            "uptime_s": (
                round(now - self.started_unix, 3)
                if self.started_unix is not None else None
            ),
            "socket": str(self.config.socket_path),
        }

    def _control(self, request: dict | None) -> dict:
        """Dispatch one socket request (bad input never kills the service)."""
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "expected one JSON line with 'op'"}
        op = request["op"]
        telemetry.count("serve.control", op=str(op))
        if op == "ping":
            return {"ok": True, "op": "ping", "pid": os.getpid()}
        if op == "status":
            return {"ok": True, **self.status()}
        if op == "metrics":
            tel = telemetry.get()
            text = "" if tel is None else tel.metrics.to_prometheus()
            return {"ok": True, "prometheus": text}
        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- plumbing --------------------------------------------------------------

    def _write_heartbeat(self, status: str | None = None) -> None:
        """Atomically replace the heartbeat file (rename, never a torn read)."""
        doc = self.status()
        if status is not None:
            doc["status"] = status
        path = self.config.heartbeat_path
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def _open_socket(self) -> None:
        path = self.config.socket_path
        if path.exists():  # a previous crash left the socket behind
            path.unlink()
        self._server = _ControlServer(str(path), _ControlHandler)
        self._server.service = self  # type: ignore[attr-defined]
        thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="mnemo-serve-control",
            daemon=True,
        )
        thread.start()

    def _close_socket(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        try:
            self.config.socket_path.unlink()
        except OSError:
            pass

    def _journal(self, kind: str, **payload) -> None:
        if self.store is not None:
            try:
                self.store.oplog.append(self.config.run_id, kind, **payload)
            except StoreError:  # pragma: no cover - contention exhausted
                telemetry.count("serve.journal_failures")

    # -- the loop --------------------------------------------------------------

    def run(self, max_ticks: int | None = None) -> int:
        """Serve until stopped; returns the process exit code.

        ``max_ticks`` bounds the run (tests, drills); None serves until
        a stop request or termination signal arrives.  Returns 0 on any
        graceful stop; a :class:`TerminationSignal` still unwinds
        through cleanup but is re-raised for the CLI to translate into
        ``128 + signum``.
        """
        Path(self.config.rundir).mkdir(parents=True, exist_ok=True)
        if self.store is None and self.config.store is not None:
            from repro.store import SQLiteStore
            self.store = SQLiteStore(self.config.store)
        if self.tick_fn is None:
            self.tick_fn = default_tick(self.config)
        self._stop.clear()
        self.started_unix = time.time()
        self._open_socket()
        self._journal(
            "service_started", pid=os.getpid(),
            workload=self.config.workload, engine=self.config.engine,
            interval_s=self.config.interval_s,
        )
        telemetry.event(
            "serve.started", workload=self.config.workload,
            interval_s=self.config.interval_s,
        )
        self._write_heartbeat()
        try:
            while not self._stop.is_set():
                t0 = time.perf_counter()
                with telemetry.span("serve.tick", n=self.ticks + 1):
                    code = int(self.tick_fn())
                elapsed = time.perf_counter() - t0
                self.ticks += 1
                self.last_exit_code = code
                telemetry.count("serve.ticks", status=str(code))
                telemetry.observe("serve.tick_s", elapsed)
                self._journal(
                    "guard_tick", n=self.ticks, exit_code=code,
                    duration_s=round(elapsed, 6),
                )
                self._write_heartbeat()
                if max_ticks is not None and self.ticks >= max_ticks:
                    break
                # sleep in short slices so stop requests land promptly
                deadline = t0 + self.config.interval_s
                while (
                    not self._stop.is_set()
                    and time.perf_counter() < deadline
                ):
                    self._stop.wait(0.05)
            return 0
        except TerminationSignal:
            telemetry.event("serve.terminated")
            raise
        finally:
            self._close_socket()
            self._journal(
                "service_stopped", pid=os.getpid(), ticks=self.ticks,
            )
            telemetry.event("serve.stopped", ticks=self.ticks)
            self._write_heartbeat(status="stopped")
            if self._owns_store and self.store is not None:
                self.store.close()
                self.store = None


def run_service(config: ServeConfig, max_ticks: int | None = None) -> int:
    """Run one :class:`GuardService` with graceful signal handling.

    The service runs under its own telemetry session so the socket's
    ``metrics`` op always has a live registry to export.  SIGTERM /
    SIGINT unwind through the service's cleanup (heartbeat stamped,
    store closed, socket removed) and map to the conventional
    ``128 + signum`` exit code; a natural stop returns 0.
    """
    service = GuardService(config)
    try:
        with telemetry.session(run_id=config.run_id):
            with handle_termination():
                return service.run(max_ticks=max_ticks)
    except TerminationSignal as sig:
        return sig.exit_code


def _service_child(config: ServeConfig, max_ticks: int | None = None):
    """Supervisor child entry point (module-level, hence picklable)."""
    sys.exit(run_service(config, max_ticks=max_ticks))  # pragma: no cover
