"""The served advisor: guard ticks plus a full advice API over a socket.

``mnemo serve`` turned the PR 4 guard loop into a long-lived service;
this module turns that service into a *served advisor*.  Besides the
scheduled guard ticks (drift + margin + periodic validation, journaled
to the oplog), :class:`GuardService` now answers advice requests over
its unix-socket control API — one JSON request line in, one JSON
response line out:

========== ===================================================
op          what it does
========== ===================================================
``ping``    liveness probe (the only op open without a token)
``status``  the heartbeat document, plus request-plane state
``metrics`` the telemetry registry in Prometheus text format
``size``    run the Mnemo advisor for a named workload profile
``validate`` replay a sizing through the recommendation validator
``drift``   score a submitted key-stream sample for drift
``reload``  hot-swap the watched recommendation, no restart
``register`` / ``revoke``  manage auth tokens (oplog-journaled)
``shutdown`` finish the current tick and exit gracefully
========== ===================================================

The heavy ops (``size`` / ``validate`` / ``drift``) run on the bounded
worker pool of :class:`~repro.service.requests.RequestPlane`: a full
admission queue sheds with a structured ``overloaded`` error and a
``retry_after_s`` hint, every request carries a deadline with
cooperative
cancellation, and a client that sends a partial line and stalls
(slowloris) is cut off by a read timeout instead of pinning a handler
thread.  When the advisor or store errors mid-request the service
degrades gracefully — the last good response for the same parameters
is re-served flagged ``stale: true`` with its age — and a failing tick
never kills the loop.  See ``docs/SERVE.md`` for the full schema.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import sys
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    GuardError,
    ReproError,
    StoreError,
    WorkloadError,
)
from repro.service.requests import AuthRegistry, Deadline, RequestPlane
from repro.service.signals import TerminationSignal, handle_termination
from repro.store.oplog import (
    KIND_CONFIG_RELOADED,
    KIND_REQUEST_SERVED,
    KIND_TOKEN_REGISTERED,
    KIND_TOKEN_REVOKED,
)

#: Default run directory for the heartbeat file and control socket.
DEFAULT_RUNDIR = ".mnemo-serve"

#: Ops that run on the request plane (queued, deadline-checked).
ADVICE_OPS = ("size", "validate", "drift")

#: ServeConfig fields a ``reload`` request may change.  Identity and
#: filesystem layout (rundir, run id, store path) stay fixed for the
#: daemon's lifetime — changing those is a restart, not a reload.
RELOADABLE_FIELDS = (
    "workload", "engine", "slo", "interval_s", "validate_every",
    "repeats", "seed", "downsample", "deadline_s",
)


@dataclass(frozen=True)
class ServeConfig:
    """Everything one guard service instance needs to know.

    Parameters
    ----------
    workload / engine / slo:
        What the guard loop watches (mirrors ``mnemo guard``).
    interval_s:
        Seconds between tick starts.
    validate_every:
        Run the full simulator replay every Nth tick (1 = every tick,
        0 = drift + margin only — the cheap mode for tight intervals).
    repeats / seed / downsample:
        Measurement settings forwarded to the profiling client.
    store:
        Optional path of the SQLite store that journals service events
        (and memoizes guard measurements).
    rundir:
        Directory for the heartbeat file and control socket.
    run_id:
        The oplog run id service events are journaled under.
    workers / queue_depth:
        Request-plane sizing: worker threads answering advice ops, and
        the admission-queue capacity beyond which requests are shed.
    deadline_s / max_deadline_s:
        Default and ceiling for per-request deadlines; a request's own
        ``deadline_s`` field is clamped to the ceiling.
    read_timeout_s / max_request_bytes:
        Slowloris defences: how long a handler waits for the request
        line, and the largest request line accepted.
    """

    workload: str = "trending"
    engine: str = "redis"
    slo: float = 0.10
    interval_s: float = 60.0
    validate_every: int = 1
    repeats: int = 3
    seed: int | None = None
    downsample: float = 0.0
    store: str | None = None
    rundir: str = DEFAULT_RUNDIR
    run_id: str = "serve"
    workers: int = 2
    queue_depth: int = 8
    deadline_s: float = 30.0
    max_deadline_s: float = 300.0
    read_timeout_s: float = 5.0
    max_request_bytes: int = 1_000_000

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be positive, got {self.interval_s}"
            )
        if self.validate_every < 0:
            raise ConfigurationError(
                f"validate_every must be >= 0, got {self.validate_every}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if not 0 < self.deadline_s <= self.max_deadline_s:
            raise ConfigurationError(
                f"deadline_s must be in (0, {self.max_deadline_s}], "
                f"got {self.deadline_s}"
            )
        if self.read_timeout_s <= 0:
            raise ConfigurationError(
                f"read_timeout_s must be positive, got {self.read_timeout_s}"
            )

    @property
    def heartbeat_path(self) -> Path:
        """Where the heartbeat JSON lives."""
        return Path(self.rundir) / "heartbeat.json"

    @property
    def socket_path(self) -> Path:
        """Where the control socket lives."""
        return Path(self.rundir) / "control.sock"


def default_tick(config: ServeConfig):
    """Build the real guard tick: profile once, then guard per call.

    Returns a zero-argument callable producing the tick's exit code
    (the :class:`~repro.guard.loop.GuardOutcome` convention: 0 clean,
    1 warnings, 3 action needed).  Kept as the stand-alone tick builder
    for embedders; the service itself now ticks through its
    :class:`~repro.service.advisor.ServedAdvisor`, which shares the
    profile with the ``size``/``validate`` ops and supports ``reload``.
    """
    from repro.service.advisor import ServedAdvisor

    advisor = ServedAdvisor(config)
    ticks = {"n": 0}

    def tick() -> int:
        ticks["n"] += 1
        return advisor.tick(ticks["n"])

    return tick


# -- control socket ------------------------------------------------------------


class _ControlHandler(socketserver.StreamRequestHandler):
    """One JSON request line in, one JSON response line out.

    The read is bounded in both time (``read_timeout_s`` — a slowloris
    client that never finishes its line is answered ``read_timeout``
    and dropped) and size (``max_request_bytes`` — an endless line is
    answered ``request_too_large``), so one bad client can never pin a
    handler thread or buffer unbounded garbage.
    """

    def handle(self) -> None:  # pragma: no cover - exercised via requests
        service = self.server.service  # type: ignore[attr-defined]
        config = service.config
        self.connection.settimeout(config.read_timeout_s)
        try:
            line = self.rfile.readline(config.max_request_bytes + 2)
        except OSError:  # timeout: the client stalled mid-line
            telemetry.count("serve.slow_reads")
            self._respond({
                "ok": False, "error": "read_timeout",
                "read_timeout_s": config.read_timeout_s,
            })
            return
        if len(line) > config.max_request_bytes:
            self._respond({
                "ok": False, "error": "request_too_large",
                "max_request_bytes": config.max_request_bytes,
            })
            return
        try:
            text = line.decode("utf-8").strip()
            request = json.loads(text) if text else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            request = None
        self._respond(service._control(request))

    def _respond(self, response: dict) -> None:
        try:
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
        except (OSError, ValueError):  # client already gone
            pass


class _ControlServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True
    # A flood must shed in the request plane, not bounce off the kernel
    # accept backlog (whose default of 5 turns bursts of connects into
    # EAGAIN connection errors before the daemon even sees them).
    request_queue_size = 128


def control_call(socket_path, request: dict, timeout: float = 5.0) -> dict:
    """Send one control request to a running service; returns its reply."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode("utf-8"))


# -- the service ---------------------------------------------------------------


class GuardService:
    """The schedulable, observable served advisor.

    Parameters
    ----------
    config:
        The :class:`ServeConfig` in force.
    tick_fn:
        Zero-argument callable returning an int exit code per tick;
        defaults to ticking the service's own
        :class:`~repro.service.advisor.ServedAdvisor` so ticks and
        advice requests share one profiled recommendation.
    store:
        An open store to journal into; defaults to opening
        ``config.store`` (when set) on :meth:`run`.
    """

    def __init__(self, config: ServeConfig, tick_fn=None, store=None):
        self.config = config
        self.tick_fn = tick_fn
        self.store = store
        self._owns_store = store is None
        self.ticks = 0
        self.tick_failures = 0
        self.generation = 0
        self.last_exit_code: int | None = None
        self.started_unix: float | None = None
        self._stop = threading.Event()
        self._server: _ControlServer | None = None
        self._advisor = None
        self._advisor_lock = threading.Lock()
        self._plane = RequestPlane(
            workers=config.workers, queue_depth=config.queue_depth,
        )
        self._auth = AuthRegistry()
        self._last_good: dict = {}
        self._requests_served = 0

    # -- the advisor -----------------------------------------------------------

    @property
    def advisor(self):
        """The live :class:`~repro.service.advisor.ServedAdvisor` snapshot.

        Built lazily; ``reload`` replaces it atomically, and in-flight
        requests keep whichever snapshot they dispatched against.
        """
        with self._advisor_lock:
            return self._advisor_locked()

    def _advisor_locked(self):
        """Build-or-return the advisor; caller holds ``_advisor_lock``."""
        if self._advisor is None:
            from repro.service.advisor import ServedAdvisor

            cache = self.store if self.store is not None else (
                self.config.store
            )
            self._advisor = ServedAdvisor(self.config, cache=cache)
        return self._advisor

    # -- control ---------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the run loop to finish the current tick and exit."""
        self._stop.set()

    def status(self) -> dict:
        """The heartbeat document (also served over the socket)."""
        now = time.time()
        advisor = self._advisor
        return {
            "pid": os.getpid(),
            "run_id": self.config.run_id,
            "status": "stopping" if self._stop.is_set() else "running",
            "workload": self.config.workload,
            "engine": self.config.engine,
            "interval_s": self.config.interval_s,
            "ticks": self.ticks,
            "tick_failures": self.tick_failures,
            "last_exit_code": self.last_exit_code,
            "started_unix": self.started_unix,
            "updated_unix": now,
            "uptime_s": (
                round(now - self.started_unix, 3)
                if self.started_unix is not None else None
            ),
            "socket": str(self.config.socket_path),
            "generation": self.generation,
            "advisor_loaded": bool(advisor is not None and advisor.loaded),
            "auth_active": self._auth.active,
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "requests_served": self._requests_served,
        }

    def _control(self, request: dict | None) -> dict:
        """Dispatch one socket request (bad input never kills the service)."""
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "expected one JSON line with 'op'"}
        op = str(request["op"])
        telemetry.count("serve.control", op=op)
        if op == "ping":
            return {
                "ok": True, "op": "ping", "pid": os.getpid(),
                "auth_active": self._auth.active,
            }
        if not self._auth.authorize(request.get("token")):
            telemetry.count("serve.unauthorized", op=op)
            return {"ok": False, "op": op, "error": "unauthorized"}
        if op == "status":
            return {"ok": True, **self.status()}
        if op == "metrics":
            tel = telemetry.get()
            text = "" if tel is None else tel.metrics.to_prometheus()
            return {"ok": True, "prometheus": text}
        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "stopping": True}
        if op == "register":
            return self._op_register(request)
        if op == "revoke":
            return self._op_revoke(request)
        if op == "reload":
            return self._op_reload(request)
        if op in ADVICE_OPS:
            return self._op_advice(op, request)
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- auth ops --------------------------------------------------------------

    def _op_register(self, request: dict) -> dict:
        try:
            digest = self._auth.register(request.get("new_token"))
        except ConfigurationError as exc:
            return {
                "ok": False, "op": "register",
                "error": "bad_request", "detail": str(exc),
            }
        self._journal(KIND_TOKEN_REGISTERED, token_sha256=digest)
        telemetry.event("serve.token_registered")
        return {
            "ok": True, "op": "register",
            "token_sha256": digest, "auth_active": True,
            "n_tokens": self._auth.n_tokens,
        }

    def _op_revoke(self, request: dict) -> dict:
        token = request.get("revoke_token")
        if not isinstance(token, str) or not token:
            return {
                "ok": False, "op": "revoke", "error": "bad_request",
                "detail": "revoke needs a 'revoke_token' string",
            }
        from repro.service.requests import token_digest

        revoked = self._auth.revoke(token)
        if revoked:
            self._journal(
                KIND_TOKEN_REVOKED, token_sha256=token_digest(token),
            )
            telemetry.event("serve.token_revoked")
        return {
            "ok": True, "op": "revoke", "revoked": revoked,
            "auth_active": self._auth.active,
            "n_tokens": self._auth.n_tokens,
        }

    # -- hot reload ------------------------------------------------------------

    def _op_reload(self, request: dict) -> dict:
        """Build a replacement advisor, then swap it in atomically.

        The new profile is fully measured *before* the swap, so advice
        requests keep being answered from the old snapshot for the
        whole (potentially long) rebuild; a broken override leaves the
        running config untouched.
        """
        overrides = {
            k: request[k] for k in RELOADABLE_FIELDS if k in request
        }
        rejected = sorted(
            k for k in request
            if k not in ("op", "token", *RELOADABLE_FIELDS)
        )
        if rejected:
            return {
                "ok": False, "op": "reload", "error": "bad_request",
                "detail": f"not reloadable: {', '.join(rejected)}",
            }
        from repro.service.advisor import ServedAdvisor

        try:
            new_config = replace(self.config, **overrides)
            cache = self.store if self.store is not None else (
                new_config.store
            )
            deadline = Deadline(self.config.max_deadline_s)
            advisor = ServedAdvisor(new_config, cache=cache)
            advisor.ensure_loaded(deadline)
        except (TypeError, ReproError) as exc:
            telemetry.count("serve.reload_failures")
            return {
                "ok": False, "op": "reload", "error": "reload_failed",
                "detail": str(exc),
            }
        with self._advisor_lock:
            self.config = new_config
            self._advisor = advisor
            self.generation += 1
            generation = self.generation
        self._last_good.clear()
        self._journal(
            KIND_CONFIG_RELOADED, generation=generation,
            **{k: overrides[k] for k in sorted(overrides)},
        )
        telemetry.event("serve.reloaded", generation=generation)
        return {
            "ok": True, "op": "reload", "generation": generation,
            "workload": new_config.workload, "engine": new_config.engine,
            "slo": new_config.slo, "changed": sorted(overrides),
        }

    # -- advice ops ------------------------------------------------------------

    def _request_deadline(self, request: dict) -> Deadline:
        budget = request.get("deadline_s", self.config.deadline_s)
        try:
            budget = float(budget)
        except (TypeError, ValueError):
            budget = self.config.deadline_s
        budget = min(max(budget, 1e-3), self.config.max_deadline_s)
        return Deadline(budget)

    def _op_advice(self, op: str, request: dict) -> dict:
        # snapshot advisor AND generation together: reloads don't move
        # in-flight work, and a response must label the snapshot it was
        # actually computed against
        with self._advisor_lock:
            advisor = self._advisor_locked()
            generation = self.generation
        deadline = self._request_deadline(request)
        t0 = time.perf_counter()
        response = self._plane.start().submit(
            op,
            lambda: self._serve_advice(
                op, advisor, generation, request, deadline,
            ),
            deadline,
        )
        elapsed = time.perf_counter() - t0
        telemetry.observe("serve.request_s", elapsed, op=op)
        self._requests_served += 1
        self._journal(
            KIND_REQUEST_SERVED, op=op,
            status=(
                "ok" if response.get("ok")
                else str(response.get("error", "error"))
            ),
            stale=bool(response.get("stale")),
            duration_s=round(elapsed, 6),
        )
        return response

    def _memo_key(self, op: str, request: dict) -> str:
        params = {
            k: v for k, v in sorted(request.items())
            if k not in ("op", "token", "deadline_s")
        }
        return f"{op}:{json.dumps(params, sort_keys=True, default=str)}"

    def _serve_advice(self, op: str, advisor, generation: int,
                      request: dict, deadline: Deadline) -> dict:
        """Run one advice op on a worker; degrade instead of erroring.

        Runs the op against the dispatched advisor snapshot.  Parameter
        errors come back as ``bad_request``; an advisor or store failure
        re-serves the last good response for the same parameters with
        ``stale: true`` and its age, keeping a degraded daemon useful.
        """
        key = self._memo_key(op, request)
        try:
            if op == "size":
                body = advisor.size(
                    workload=request.get("workload"),
                    engine=request.get("engine"),
                    slo=request.get("slo"),
                    deadline=deadline,
                )
            elif op == "validate":
                body = advisor.validate(
                    n_fast_keys=request.get("n_fast_keys"),
                    budget_pct=request.get("budget_pct"),
                    deadline=deadline,
                )
            else:
                body = advisor.drift(
                    keys=request.get("keys"),
                    sizes=request.get("sizes"),
                    deadline=deadline,
                )
        except DeadlineExceededError:
            raise  # the plane renders the structured response
        except (ConfigurationError, WorkloadError, GuardError) as exc:
            return {
                "ok": False, "op": op,
                "error": "bad_request", "detail": str(exc),
            }
        except ReproError as exc:
            return self._degrade(op, key, exc)
        response = {
            "ok": True, "op": op, "generation": generation,
            "stale": False, **body,
        }
        self._last_good[key] = (time.time(), response)
        return response

    def _degrade(self, op: str, key: str, exc: ReproError) -> dict:
        """Serve the last good answer, honestly flagged stale."""
        telemetry.count("serve.degraded", op=op)
        memo = self._last_good.get(key)
        if memo is None:
            return {
                "ok": False, "op": op,
                "error": "advisor_error", "detail": str(exc),
            }
        at, response = memo
        telemetry.count("serve.stale_served", op=op)
        return {
            **response,
            "stale": True,
            "stale_age_s": round(time.time() - at, 3),
            "stale_reason": str(exc),
        }

    # -- plumbing --------------------------------------------------------------

    def _write_heartbeat(self, status: str | None = None) -> None:
        """Atomically replace the heartbeat file (rename, never a torn read)."""
        doc = self.status()
        if status is not None:
            doc["status"] = status
        path = self.config.heartbeat_path
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def _open_socket(self) -> None:
        """Bind the control socket, reclaiming a stale path safely.

        A SIGKILL leaves the previous socket file behind and a naive
        rebind fails — but blind unlinking would steal the address from
        a *live* daemon.  So an existing path is probed with ``ping``
        first: an answer means another instance owns it (refuse to
        start); silence means the file is stale and safe to reclaim.
        """
        path = self.config.socket_path
        if path.exists():
            alive = None
            try:
                alive = control_call(path, {"op": "ping"}, timeout=1.0)
            except (OSError, ValueError):
                alive = None
            if alive is not None and alive.get("ok"):
                raise ConfigurationError(
                    f"another service (pid {alive.get('pid')}) is already "
                    f"listening on {path}; refusing to steal its socket"
                )
            telemetry.event("serve.stale_socket_reclaimed", path=str(path))
            path.unlink()
        self._server = _ControlServer(str(path), _ControlHandler)
        self._server.service = self  # type: ignore[attr-defined]
        thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="mnemo-serve-control",
            daemon=True,
        )
        thread.start()

    def _close_socket(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        try:
            self.config.socket_path.unlink()
        except OSError:
            pass

    def _journal(self, kind: str, **payload) -> None:
        if self.store is not None:
            try:
                self.store.oplog.append(self.config.run_id, kind, **payload)
            except StoreError:  # pragma: no cover - contention exhausted
                telemetry.count("serve.journal_failures")

    # -- the loop --------------------------------------------------------------

    def run(self, max_ticks: int | None = None) -> int:
        """Serve until stopped; returns the process exit code.

        ``max_ticks`` bounds the run (tests, drills); None serves until
        a stop request or termination signal arrives.  Returns 0 on any
        graceful stop; a :class:`TerminationSignal` still unwinds
        through cleanup but is re-raised for the CLI to translate into
        ``128 + signum``.  A tick that raises is journaled and counted
        — the loop (and the request plane riding on it) keeps serving.
        """
        Path(self.config.rundir).mkdir(parents=True, exist_ok=True)
        if self.store is None and self.config.store is not None:
            from repro.store import SQLiteStore
            self.store = SQLiteStore(self.config.store)
        if self.store is not None:
            self._auth = AuthRegistry.replay(
                self.store.oplog, self.config.run_id,
            )
        if self.tick_fn is None:
            self.tick_fn = lambda: self.advisor.tick(self.ticks + 1)
        self._stop.clear()
        self.started_unix = time.time()
        self._open_socket()
        self._plane.start()
        self._journal(
            "service_started", pid=os.getpid(),
            workload=self.config.workload, engine=self.config.engine,
            interval_s=self.config.interval_s,
        )
        telemetry.event(
            "serve.started", workload=self.config.workload,
            interval_s=self.config.interval_s,
        )
        self._write_heartbeat()
        try:
            while not self._stop.is_set():
                t0 = time.perf_counter()
                try:
                    with telemetry.span("serve.tick", n=self.ticks + 1):
                        code = int(self.tick_fn())
                except Exception as exc:  # noqa: BLE001 - a failing tick
                    # must never take the request plane down with it
                    code = None
                    self.tick_failures += 1
                    telemetry.count("serve.tick_failures")
                    self._journal(
                        "guard_tick_failed", n=self.ticks + 1,
                        error=str(exc)[:500],
                    )
                elapsed = time.perf_counter() - t0
                self.ticks += 1
                if code is not None:
                    self.last_exit_code = code
                    telemetry.count("serve.ticks", status=str(code))
                    telemetry.observe("serve.tick_s", elapsed)
                    self._journal(
                        "guard_tick", n=self.ticks, exit_code=code,
                        duration_s=round(elapsed, 6),
                    )
                self._write_heartbeat()
                if max_ticks is not None and self.ticks >= max_ticks:
                    break
                # sleep in short slices so stop requests land promptly
                deadline = t0 + self.config.interval_s
                while (
                    not self._stop.is_set()
                    and time.perf_counter() < deadline
                ):
                    self._stop.wait(0.05)
            return 0
        except TerminationSignal:
            telemetry.event("serve.terminated")
            raise
        finally:
            self._close_socket()
            self._plane.close()
            self._journal(
                "service_stopped", pid=os.getpid(), ticks=self.ticks,
            )
            telemetry.event("serve.stopped", ticks=self.ticks)
            self._write_heartbeat(status="stopped")
            if self._owns_store and self.store is not None:
                self.store.close()
                self.store = None


def run_service(config: ServeConfig, max_ticks: int | None = None) -> int:
    """Run one :class:`GuardService` with graceful signal handling.

    The service runs under its own telemetry session so the socket's
    ``metrics`` op always has a live registry to export.  SIGTERM /
    SIGINT unwind through the service's cleanup (heartbeat stamped,
    store closed, socket removed) and map to the conventional
    ``128 + signum`` exit code; a natural stop returns 0.
    """
    service = GuardService(config)
    try:
        with telemetry.session(run_id=config.run_id):
            with handle_termination():
                return service.run(max_ticks=max_ticks)
    except TerminationSignal as sig:
        return sig.exit_code


def _service_child(config: ServeConfig, max_ticks: int | None = None):
    """Supervisor child entry point (module-level, hence picklable)."""
    sys.exit(run_service(config, max_ticks=max_ticks))  # pragma: no cover
