"""Service layer: the supervised, observable served advisor.

``mnemo serve`` (see ``docs/SERVE.md``) composes five pieces:

- :mod:`repro.service.signals` — SIGTERM/SIGINT as catchable
  :class:`TerminationSignal` control flow, so every ``finally`` runs;
- :mod:`repro.service.requests` — the request plane: per-request
  :class:`Deadline` budgets, the bounded :class:`RequestPlane` worker
  pool with admission control and load shedding, and the
  :class:`AuthRegistry` of journaled token digests;
- :mod:`repro.service.advisor` — :class:`ServedAdvisor`, the Mnemo
  sizing/validation/drift engine behind the socket ops, bit-identical
  to the CLI one-shots and memoized through the shared store;
- :mod:`repro.service.serve` — :class:`GuardService`, the scheduled
  guard-tick loop with a heartbeat file and the unix-socket control
  API (``ping`` / ``status`` / ``metrics`` / ``size`` / ``validate`` /
  ``drift`` / ``reload`` / ``register`` / ``revoke`` / ``shutdown``);
- :mod:`repro.service.client` — :class:`ServiceClient`, the retrying
  caller (bounded exponential backoff, deterministic jitter,
  server-directed pacing) used by the CLI ``--control`` path and the
  supervisor, plus :func:`diagnose_unreachable` heartbeat forensics;
- :mod:`repro.service.supervisor` — :class:`Supervisor`, the
  crash-restart wrapper with exponential backoff and a restart budget.
"""

from repro.service.advisor import ServedAdvisor
from repro.service.client import (
    ClientPolicy,
    ServiceClient,
    diagnose_unreachable,
)
from repro.service.requests import (
    AuthRegistry,
    Deadline,
    RequestPlane,
    token_digest,
)
from repro.service.serve import (
    ADVICE_OPS,
    DEFAULT_RUNDIR,
    RELOADABLE_FIELDS,
    GuardService,
    ServeConfig,
    control_call,
    default_tick,
    run_service,
)
from repro.service.signals import (
    TERMINATION_SIGNALS,
    TerminationSignal,
    handle_termination,
)
from repro.service.supervisor import STOP_GRACE_S, RestartPolicy, Supervisor

__all__ = [
    "ADVICE_OPS",
    "AuthRegistry",
    "ClientPolicy",
    "DEFAULT_RUNDIR",
    "Deadline",
    "GuardService",
    "RELOADABLE_FIELDS",
    "RequestPlane",
    "RestartPolicy",
    "STOP_GRACE_S",
    "ServeConfig",
    "ServedAdvisor",
    "ServiceClient",
    "Supervisor",
    "TERMINATION_SIGNALS",
    "TerminationSignal",
    "control_call",
    "default_tick",
    "diagnose_unreachable",
    "handle_termination",
    "run_service",
    "token_digest",
]
