"""Service layer: supervised, observable long-running guard operation.

``mnemo serve`` (see ``docs/STORE.md``) composes three pieces:

- :mod:`repro.service.signals` — SIGTERM/SIGINT as catchable
  :class:`TerminationSignal` control flow, so every ``finally`` runs;
- :mod:`repro.service.serve` — :class:`GuardService`, the scheduled
  guard-tick loop with a heartbeat file and a unix-socket control API
  (``ping`` / ``status`` / ``metrics`` / ``shutdown``);
- :mod:`repro.service.supervisor` — :class:`Supervisor`, the
  crash-restart wrapper with exponential backoff and a restart budget.
"""

from repro.service.serve import (
    DEFAULT_RUNDIR,
    GuardService,
    ServeConfig,
    control_call,
    default_tick,
    run_service,
)
from repro.service.signals import (
    TERMINATION_SIGNALS,
    TerminationSignal,
    handle_termination,
)
from repro.service.supervisor import STOP_GRACE_S, RestartPolicy, Supervisor

__all__ = [
    "DEFAULT_RUNDIR",
    "GuardService",
    "RestartPolicy",
    "STOP_GRACE_S",
    "ServeConfig",
    "Supervisor",
    "TERMINATION_SIGNALS",
    "TerminationSignal",
    "control_call",
    "default_tick",
    "handle_termination",
    "run_service",
]
