"""The served advisor: Mnemo sizing/validation/drift behind the socket ops.

:class:`ServedAdvisor` owns everything one ``mnemo serve`` daemon knows
about advice: the planning trace, the profiled
:class:`~repro.core.report.MnemoReport` it watches, the guard loop that
re-checks it every tick, and the ad-hoc profiles built for ``size``
requests naming other workloads.  The service
(:mod:`repro.service.serve`) stays a pure request router; this module
is where sizing actually happens.

Two invariants shape the code:

- **Bit-identity with the CLI.**  A ``size`` request runs the exact
  profiling path of ``mnemo profile`` — trace generation, optional
  downsample, :meth:`WorkloadDescriptor.from_trace`, then
  :meth:`Mnemo.profile` with the same client settings — so a response
  served over the socket is numerically identical to the one-shot CLI
  answer, and both hit the same content-addressed store entries.
- **One simulator, many threads.**  The watched ``Mnemo``'s measuring
  client memoizes per-trace state and is not thread-safe, so every use
  of it (ticks, validation replays, watched-profile reads) serialises
  on one lock.  Ad-hoc profiles build their own engine/client stack and
  only share the sqlite-backed result cache, which is fork- and
  thread-safe by design.

Hot reload swaps a fully-built replacement advisor atomically
(:meth:`GuardService.reload <repro.service.serve.GuardService>`);
in-flight requests keep the snapshot they dispatched against, so a
reload never drops or corrupts a request that already started.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict

from repro import telemetry
from repro.errors import ConfigurationError

#: Deadline checkpoint labels (also the ``where`` field of structured
#: ``deadline_exceeded`` responses).
CHECKPOINT_TRACE = "trace"
CHECKPOINT_PROFILE = "profile"
CHECKPOINT_VALIDATE = "validate"


def choice_payload(choice) -> dict:
    """A :class:`~repro.core.slo.SizingChoice` as a JSON-safe dict."""
    body = asdict(choice)
    body["fast_bytes"] = float(body["fast_bytes"])
    body["n_fast_keys"] = int(body["n_fast_keys"])
    body["savings_percent"] = float(choice.savings_percent)
    return body


class ServedAdvisor:
    """Advice engine behind one ``mnemo serve`` daemon.

    Parameters
    ----------
    config:
        The :class:`~repro.service.serve.ServeConfig` in force.
    cache:
        The shared result cache (an open
        :class:`~repro.store.SQLiteStore`, a path, or None) every
        profile run memoizes through.
    """

    def __init__(self, config, cache=None):
        self.config = config
        self.cache = cache if cache is not None else config.store
        self.loaded_unix: float | None = None
        self._sim_lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._mnemo = None
        self._planning = None
        self._descriptor = None
        self._report = None
        self._loop = None
        self._adhoc: dict[tuple[str, str], object] = {}
        self._engines = self._engine_table()

    @staticmethod
    def _engine_table() -> dict:
        from repro.kvstore import DynamoLike, MemcachedLike, RedisLike

        return {
            "redis": RedisLike,
            "memcached": MemcachedLike,
            "dynamodb": DynamoLike,
        }

    # -- loading -------------------------------------------------------------

    @property
    def loaded(self) -> bool:
        """True once the watched profile has been measured."""
        return self._report is not None

    def _build_trace(self, workload: str):
        """The CLI's planning-trace path: generate, then downsample."""
        from repro.ycsb import downsample, generate_trace, workload_by_name

        trace = generate_trace(workload_by_name(workload))
        if self.config.downsample and self.config.downsample > 1:
            trace = downsample(
                trace, factor=self.config.downsample, seed=self.config.seed,
            )
        return trace

    def _build_mnemo(self, engine: str):
        """One advisor stack with the daemon's measurement settings."""
        from repro.core import Mnemo
        from repro.ycsb import YCSBClient

        if engine not in self._engines:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of "
                f"{sorted(self._engines)}"
            )
        return Mnemo(
            engine_factory=self._engines[engine],
            client=YCSBClient(
                repeats=self.config.repeats, seed=self.config.seed,
            ),
            cache=self.cache,
        )

    def ensure_loaded(self, deadline=None) -> "ServedAdvisor":
        """Measure the watched profile once (idempotent, thread-safe).

        Built lazily so constructing an advisor is cheap; the first
        tick or advice request pays for the profile, every later one
        reads the memo (or, across restarts, the shared store cache).
        """
        from repro.core import WorkloadDescriptor
        from repro.guard import ErrorBudget

        with self._load_lock:
            if self._report is not None:
                return self
            if deadline is not None:
                deadline.check(CHECKPOINT_TRACE)
            planning = self._build_trace(self.config.workload)
            descriptor = WorkloadDescriptor.from_trace(planning)
            if deadline is not None:
                deadline.check(CHECKPOINT_PROFILE)
            mnemo = self._build_mnemo(self.config.engine)
            with telemetry.span(
                "serve.load", workload=self.config.workload,
                engine=self.config.engine,
            ):
                report = mnemo.profile(descriptor)
            self._planning = planning
            self._descriptor = descriptor
            self._mnemo = mnemo
            self._report = report
            self._loop = mnemo.guard_loop(budget=ErrorBudget())
            self.loaded_unix = time.time()
            return self

    # -- the guard tick ------------------------------------------------------

    def tick(self, n: int) -> int:
        """Run guard tick *n*; returns the guard exit code (0/1/3)."""
        self.ensure_loaded()
        validate = (
            self.config.validate_every > 0
            and n % self.config.validate_every == 0
        )
        with self._sim_lock:
            outcome = self._loop.run(
                self._report, self._planning, live_trace=self._planning,
                max_slowdown=self.config.slo, validate=validate,
            )
        return outcome.exit_code

    # -- the ops -------------------------------------------------------------

    def size(self, workload: str | None = None, engine: str | None = None,
             slo: float | None = None, deadline=None) -> dict:
        """Serve a sizing recommendation (the ``size`` op).

        Defaults to the watched workload/engine/SLO; naming another
        workload or engine profiles it ad hoc through the same shared
        cache and memoizes the report for the daemon's lifetime.
        """
        workload = workload or self.config.workload
        engine = engine or self.config.engine
        slo = self.config.slo if slo is None else float(slo)
        if not 0.0 < slo < 1.0:
            raise ConfigurationError(
                f"slo must be in (0, 1), got {slo}"
            )
        watched = (
            workload == self.config.workload
            and engine == self.config.engine
        )
        if watched:
            self.ensure_loaded(deadline)
            report = self._report
        else:
            report = self._adhoc_report(workload, engine, deadline)
        if deadline is not None:
            deadline.check(CHECKPOINT_PROFILE)
        with self._sim_lock:
            choice = report.choose(slo)
        return {
            "workload": workload,
            "engine": engine,
            "slo": slo,
            "watched": watched,
            "choice": choice_payload(choice),
            "confidence": float(report.confidence),
            "pattern_mode": report.pattern.mode,
            "fastmem_only_ops_s": float(
                report.baselines.fast.throughput_ops_s
            ),
            "slowmem_only_ops_s": float(
                report.baselines.slow.throughput_ops_s
            ),
        }

    def _adhoc_report(self, workload: str, engine: str, deadline=None):
        """Profile (and memoize) a non-watched workload/engine pair."""
        key = (workload, engine)
        report = self._adhoc.get(key)
        if report is not None:
            telemetry.count("serve.size_memo_hits", workload=workload)
            return report
        if deadline is not None:
            deadline.check(CHECKPOINT_TRACE)
        from repro.core import WorkloadDescriptor

        trace = self._build_trace(workload)
        descriptor = WorkloadDescriptor.from_trace(trace)
        if deadline is not None:
            deadline.check(CHECKPOINT_PROFILE)
        mnemo = self._build_mnemo(engine)
        with telemetry.span("serve.size_profile", workload=workload,
                            engine=engine):
            report = mnemo.profile(descriptor)
        self._adhoc[key] = report
        return report

    def validate(self, n_fast_keys: int | None = None,
                 budget_pct: float | None = None, deadline=None) -> dict:
        """Replay a sizing through the validator (the ``validate`` op).

        ``n_fast_keys`` defaults to the watched SLO choice; a custom
        ``budget_pct`` tightens/loosens both error-budget axes.
        """
        from repro.core.slo import choice_at
        from repro.guard import ErrorBudget

        self.ensure_loaded(deadline)
        if budget_pct is not None and budget_pct <= 0:
            raise ConfigurationError(
                f"budget_pct must be positive, got {budget_pct}"
            )
        with self._sim_lock:
            if n_fast_keys is None:
                choice = self._report.choose(self.config.slo)
            else:
                n = int(n_fast_keys)
                choice = choice_at(
                    self._report.curve, n, max_slowdown=self.config.slo,
                )
            if budget_pct is None:
                validator = self._loop.validator
            else:
                budget = ErrorBudget(
                    throughput_pct=float(budget_pct),
                    latency_pct=float(budget_pct),
                )
                validator = self._mnemo.guard_loop(budget=budget).validator
            if deadline is not None:
                deadline.check(CHECKPOINT_VALIDATE)
            verdict = validator.validate(
                self._report.curve, choice, self._planning,
            )
        return {
            "workload": self.config.workload,
            "engine": self.config.engine,
            "n_fast_keys": int(choice.n_fast_keys),
            "passed": bool(verdict.passed),
            "verdict": verdict.to_payload(),
        }

    def drift(self, keys, sizes=None, deadline=None) -> dict:
        """Score a live key-stream sample for drift (the ``drift`` op)."""
        import numpy as np

        from repro.guard import DriftDetector

        self.ensure_loaded(deadline)
        try:
            key_arr = np.asarray(keys, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"drift keys must be integer key ids: {exc}"
            ) from exc
        if key_arr.ndim != 1 or key_arr.size == 0:
            raise ConfigurationError(
                "drift needs a non-empty flat list of key ids"
            )
        n_keys = self._planning.n_keys
        if key_arr.min() < 0 or key_arr.max() >= n_keys:
            raise ConfigurationError(
                f"drift keys must be in [0, {n_keys}); the sample must "
                "come from the watched workload's key space"
            )
        size_arr = None
        if sizes is not None:
            try:
                size_arr = np.asarray(sizes, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"drift sizes must be numeric: {exc}"
                ) from exc
            if size_arr.shape != key_arr.shape:
                raise ConfigurationError(
                    "sizes must align one-to-one with keys"
                )
        if deadline is not None:
            deadline.check(CHECKPOINT_VALIDATE)
        detector = DriftDetector(self._planning)
        report = detector.observe(key_arr, size_arr).report()
        advice = report.advice
        return {
            "workload": self.config.workload,
            "n_live_requests": int(report.n_live_requests),
            "level": report.level,
            "action": advice.action,
            "reason": advice.reason,
            "signals": [
                {
                    "metric": s.metric,
                    "value": float(s.value),
                    "warn": float(s.warn),
                    "act": float(s.act),
                    "level": s.level,
                }
                for s in report.signals
            ],
        }
