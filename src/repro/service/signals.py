"""Cooperative termination: SIGTERM/SIGINT as a catchable control flow.

Long-running commands (``mnemo sweep``, ``mnemo serve``) own resources
that must be released on the way out — shared-memory trace segments, a
warm worker pool, an open store.  A bare SIGTERM would skip every
``finally`` block; :func:`handle_termination` converts it (and SIGINT)
into a :class:`TerminationSignal` raised at the next bytecode boundary,
so the normal unwind runs ``runner.close()`` / ``store.close()`` and
the process can exit with the conventional ``128 + signum`` code.

:class:`TerminationSignal` derives from :class:`BaseException` — like
``KeyboardInterrupt`` — so ``except Exception`` recovery paths (retry
loops, salvage collection) never swallow a shutdown request.

Signal handlers can only be installed from the main thread; from any
other thread (or under a test harness that owns the handlers) the
context manager degrades to a no-op rather than failing.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

#: The signals a service shutdown may arrive on.
TERMINATION_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class TerminationSignal(BaseException):
    """A termination signal arrived; unwind, release, and exit.

    ``signum`` names the signal so the CLI can exit ``128 + signum``
    (143 for SIGTERM, 130 for SIGINT) the way shells expect.
    """

    def __init__(self, signum: int):
        self.signum = int(signum)
        super().__init__(f"received {signal.Signals(signum).name}")

    @property
    def exit_code(self) -> int:
        """The conventional shell exit code for this signal."""
        return 128 + self.signum


@contextmanager
def handle_termination(*signums: int):
    """Raise :class:`TerminationSignal` on SIGTERM/SIGINT inside the block.

    Only the *first* signal raises: repeated deliveries (a supervisor
    nudging an already-unwinding child, an operator's double ctrl-C)
    are ignored so they cannot abort the cleanup the first one started.

    Previous handlers are restored on exit, so nesting and test
    harnesses behave.  Outside the main thread the block runs with the
    process's existing handlers (installing would raise ``ValueError``).
    """
    signums = signums or TERMINATION_SIGNALS
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    fired = []

    def _raise(signum, frame):  # pragma: no cover - exercised in subprocesses
        if fired:  # already unwinding; let the cleanup finish
            return
        fired.append(signum)
        raise TerminationSignal(signum)

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _raise)
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
