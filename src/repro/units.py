"""Unit helpers and constants.

The simulator works in *nanoseconds* for time and *bytes* for capacity.
These helpers keep conversion factors in one place and give the rest of
the code readable call sites (``4 * GiB``, ``ns_to_s(t)``).
"""

from __future__ import annotations

# -- capacity ---------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

# -- time -------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / NS_PER_US


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / NS_PER_MS


def s_to_ns(s: float) -> float:
    """Convert seconds to nanoseconds."""
    return s * NS_PER_S


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a bandwidth in GB/s to bytes per nanosecond.

    1 GB/s = 1e9 bytes / 1e9 ns = exactly 1 byte/ns, which makes the
    arithmetic in the access-time model pleasantly simple.
    """
    return float(gbps)


def bytes_per_ns_to_gbps(bpns: float) -> float:
    """Inverse of :func:`gbps_to_bytes_per_ns`."""
    return float(bpns)


def format_bytes(n: float) -> str:
    """Human-readable byte count (decimal units, two decimals)."""
    n = float(n)
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def format_ns(t: float) -> str:
    """Human-readable duration from nanoseconds."""
    t = float(t)
    if abs(t) >= NS_PER_S:
        return f"{t / NS_PER_S:.3f} s"
    if abs(t) >= NS_PER_MS:
        return f"{t / NS_PER_MS:.3f} ms"
    if abs(t) >= NS_PER_US:
        return f"{t / NS_PER_US:.3f} us"
    return f"{t:.1f} ns"
