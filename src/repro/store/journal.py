"""Sweep journaling: checkpoint completed experiments, resume after kills.

A :class:`SweepJournal` binds one sweep invocation to a ``run_id`` in
the store's oplog.  The runner checkpoints every completed experiment
the moment its result lands in the coordinator
(:meth:`~repro.runner.grid.ExperimentRunner.sweep` with ``journal=``),
so progress is durable at single-experiment granularity:

- ``sweep_started`` — the spec labels and count, appended once per
  process that works on the run (a resume appends another with
  ``resumed=True``, preserving the full history);
- ``experiment_done`` — one entry per completed experiment carrying its
  spec index, label and content-addressed fingerprint;
- ``sweep_finished`` — the terminal entry; its absence means the
  coordinator died mid-sweep and the run is resumable.

Resume needs no replay machinery: the result *bytes* live in the store
under the experiment fingerprint (content-addressed, bit-identical to
what any rerun would measure), so resuming is exactly "skip every
fingerprint the journal says is done, load its row, mark its
provenance ``journal``".  A resumed sweep therefore reproduces the
uninterrupted sweep's :class:`~repro.runner.grid.GridOutcome` results
bit for bit.
"""

from __future__ import annotations

from repro.errors import StoreError
from repro.store.oplog import OplogEntry


class SweepJournal:
    """Checkpoint log of one journaled sweep run.

    Parameters
    ----------
    store:
        The :class:`~repro.store.SQLiteStore` holding both the oplog
        and the result rows the checkpoints point at.
    run_id:
        The journal key; ``mnemo sweep --resume RUN_ID`` binds a new
        coordinator to the same id.
    """

    def __init__(self, store, run_id: str):
        if not run_id:
            raise StoreError("a sweep journal needs a non-empty run id")
        self.store = store
        self.run_id = str(run_id)

    # -- queries --------------------------------------------------------------

    def entries(self, kind: str | None = None) -> list[OplogEntry]:
        """This run's oplog entries (optionally one kind), in order."""
        return self.store.oplog.entries(run_id=self.run_id, kind=kind)

    def started(self) -> bool:
        """True when some coordinator has begun this run."""
        return bool(self.entries(kind="sweep_started"))

    def finished(self) -> bool:
        """True when a coordinator completed the sweep (terminal entry)."""
        return bool(self.entries(kind="sweep_finished"))

    def completed(self) -> dict[str, str]:
        """Checkpointed experiments: fingerprint -> spec label."""
        return {
            e.payload["fingerprint"]: e.payload.get("label", "")
            for e in self.entries(kind="experiment_done")
            if "fingerprint" in e.payload
        }

    # -- checkpoints ----------------------------------------------------------

    def begin(self, labels: list[str]) -> bool:
        """Record this coordinator's start; returns True when resuming."""
        resumed = self.started()
        self.store.oplog.append(
            self.run_id, "sweep_started",
            n_specs=len(labels), labels=list(labels), resumed=resumed,
        )
        return resumed

    def record(self, index: int, label: str, fingerprint: str) -> None:
        """Durably checkpoint one completed experiment."""
        self.store.oplog.append(
            self.run_id, "experiment_done",
            index=index, label=label, fingerprint=fingerprint,
        )

    def finish(self, completed: int, failed: int) -> None:
        """Append the terminal entry (the run is no longer resumable-as-dead)."""
        self.store.oplog.append(
            self.run_id, "sweep_finished",
            completed=completed, failed=failed,
        )
