"""Append-only operation log of sweep and guard events.

The oplog is the store's journal plane: one monotonically-sequenced
table of ``(run_id, kind, at, payload)`` rows that is only ever
appended to.  Three consumers ride on it:

- **resumable sweeps** — :class:`~repro.store.journal.SweepJournal`
  checkpoints each completed experiment as an ``experiment_done``
  entry, so ``mnemo sweep --resume RUN_ID`` can skip finished work
  after a coordinator kill;
- **the guard service** — every ``mnemo serve`` tick appends a
  ``guard_tick`` entry, turning the always-on advisor's history into a
  SQL-queryable audit trail;
- **operators** — ``SELECT kind, COUNT(*) FROM oplog GROUP BY kind``
  style censuses over run history, with no log files to scrape.

Appends run inside the store's single-writer transactions, so an entry
is either fully durable or absent — the crash drills in
``tests/store/test_crash.py`` SIGKILL writers mid-append and assert
exactly that.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

#: Oplog kinds the served-advisor request plane appends (docs/SERVE.md):
#: token registration/revocation events carry a ``token_sha256`` digest
#: (never the raw token), and one ``request_served`` entry summarises
#: each completed advice request (op, status, duration).
KIND_TOKEN_REGISTERED = "auth_token_registered"
KIND_TOKEN_REVOKED = "auth_token_revoked"
KIND_REQUEST_SERVED = "request_served"
KIND_CONFIG_RELOADED = "config_reloaded"

#: Every request-plane kind, for censuses and tests.
SERVICE_REQUEST_KINDS = (
    KIND_TOKEN_REGISTERED,
    KIND_TOKEN_REVOKED,
    KIND_REQUEST_SERVED,
    KIND_CONFIG_RELOADED,
)


@dataclass(frozen=True)
class OplogEntry:
    """One immutable oplog row."""

    seq: int
    run_id: str
    kind: str
    at: float
    payload: dict

    def describe(self) -> str:
        """One human-readable line (the ``mnemo store log`` row format)."""
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"#{self.seq} [{self.run_id}] {self.kind} {detail}".rstrip()


class Oplog:
    """Append-only event log over a store's :class:`~repro.store.db.Database`."""

    def __init__(self, db):
        self.db = db

    def append(self, run_id: str, kind: str, **payload) -> int:
        """Durably append one entry; returns its sequence number.

        The payload must be JSON-serialisable; the append commits in
        its own single-writer transaction (atomic under SIGKILL).
        """
        body = json.dumps(payload, sort_keys=True)
        now = time.time()

        def txn(conn):
            cur = conn.execute(
                "INSERT INTO oplog (run_id, kind, at, payload)"
                " VALUES (?, ?, ?, ?)",
                (run_id, kind, now, body),
            )
            return cur.lastrowid

        return self.db.write_txn(txn)

    def entries(
        self, run_id: str | None = None, kind: str | None = None,
    ) -> list[OplogEntry]:
        """Entries in append order, optionally filtered by run and kind."""
        clauses, params = [], []
        if run_id is not None:
            clauses.append("run_id = ?")
            params.append(run_id)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self.db.read().execute(
            f"SELECT seq, run_id, kind, at, payload FROM oplog{where}"
            " ORDER BY seq", params,
        ).fetchall()
        out = []
        for row in rows:
            try:
                payload = json.loads(row["payload"])
            except json.JSONDecodeError:  # pragma: no cover - append is atomic
                payload = {"_raw": row["payload"]}
            out.append(OplogEntry(
                seq=row["seq"], run_id=row["run_id"], kind=row["kind"],
                at=row["at"], payload=payload,
            ))
        return out

    def latest(
        self, run_id: str | None = None, kind: str | None = None,
    ) -> OplogEntry | None:
        """The most recent matching entry, or None (liveness queries)."""
        entries = self.entries(run_id=run_id, kind=kind)
        return entries[-1] if entries else None

    def runs(self) -> list[tuple[str, int]]:
        """Distinct run ids with entry counts, most recent first."""
        rows = self.db.read().execute(
            "SELECT run_id, COUNT(*) AS n, MAX(seq) AS latest FROM oplog"
            " GROUP BY run_id ORDER BY latest DESC"
        ).fetchall()
        return [(row["run_id"], row["n"]) for row in rows]
