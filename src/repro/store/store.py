"""Durable SQLite-backed experiment store behind the cache interface.

:class:`SQLiteStore` is a drop-in replacement for the v2 file-tree
:class:`~repro.runner.cache.ResultCache`: same getters/setters, same
checksummed entry envelopes (the codecs in :mod:`repro.runner.cache`
are shared, so a migrated entry reads back bit-identically), same
quarantine-and-recompute corruption policy, same telemetry metric
names.  What changes is durability and queryability:

- every write is one WAL-mode ``BEGIN IMMEDIATE`` transaction
  (:mod:`repro.store.db`), so a SIGKILL mid-write can never leave a
  torn entry — the row is either fully there or absent;
- concurrent runners on one volume contend on SQLite's write lock
  instead of racing over loose files, with ``busy_timeout`` plus
  bounded-backoff retry absorbing the contention;
- entries, quarantine and the append-only oplog
  (:mod:`repro.store.oplog`) live in one file that plain SQL can
  census — provenance, cross-run comparisons, quarantine autopsies;
- corrupt entries are not deleted: they move to the ``quarantine``
  table with their reason and payload intact.

Schema (``SCHEMA_VERSION`` is shared with the file cache; stale-schema
rows read as misses, exactly like stale files)::

    entries(kind, fingerprint, schema, body, created_at)   -- PK (kind, fingerprint)
    quarantine(kind, fingerprint, reason, body, quarantined_at)
    oplog(seq, run_id, kind, at, payload)                  -- append-only
    meta(key, value)

``mnemo cache migrate`` (:mod:`repro.store.migrate`) moves a v2 file
tree into a store with per-entry read-back verification.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.errors import StoreError
from repro.runner.cache import (
    SCHEMA_VERSION,
    CacheStats,
    CacheVerifyReport,
    ResultCache,
    decode_hitmask,
    decode_result,
    decode_trace,
    decode_verdict,
    encode_hitmask,
    encode_result,
    encode_trace,
    encode_verdict,
)
from repro.store.db import Database
from repro.store.oplog import Oplog
from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace

#: Default store filename (relative to the working directory).
DEFAULT_STORE_PATH = "mnemo.db"

_KINDS = ("results", "traces", "hitmasks", "verdicts")

#: Schema DDL, one statement per element so creation can run inside a
#: single retried write transaction (``executescript`` would implicitly
#: commit and escape it).
_SCHEMA_STATEMENTS = (
    """CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS entries (
        kind        TEXT    NOT NULL,
        fingerprint TEXT    NOT NULL,
        schema      INTEGER NOT NULL,
        body        BLOB    NOT NULL,
        created_at  REAL    NOT NULL,
        PRIMARY KEY (kind, fingerprint)
    )""",
    """CREATE TABLE IF NOT EXISTS quarantine (
        kind           TEXT NOT NULL,
        fingerprint    TEXT NOT NULL,
        reason         TEXT NOT NULL,
        body           BLOB,
        quarantined_at REAL NOT NULL,
        PRIMARY KEY (kind, fingerprint)
    )""",
    """CREATE TABLE IF NOT EXISTS oplog (
        seq     INTEGER PRIMARY KEY AUTOINCREMENT,
        run_id  TEXT NOT NULL,
        kind    TEXT NOT NULL,
        at      REAL NOT NULL,
        payload TEXT NOT NULL
    )""",
    "CREATE INDEX IF NOT EXISTS oplog_by_run ON oplog (run_id, seq)",
)


class SQLiteStore(ResultCache):
    """Content-addressed experiment store in one SQLite file.

    Parameters
    ----------
    path:
        Database file (created on first use; parents too).  The
        :attr:`root` attribute is this path, so payloads that carry
        ``str(cache.root)`` across process boundaries rebuild a store
        (see :func:`~repro.runner.cache.ensure_cache`).
    strict:
        When True, reads of corrupt entries raise
        :class:`~repro.errors.CacheCorruptionError` (after
        quarantining) instead of reporting a miss.
    busy_timeout_ms / max_attempts:
        Lock-contention tolerance, forwarded to
        :class:`~repro.store.db.Database`.
    """

    def __init__(
        self,
        path: str | Path = DEFAULT_STORE_PATH,
        strict: bool = False,
        busy_timeout_ms: int | None = None,
        max_attempts: int | None = None,
    ):
        self.root = Path(path)
        self.strict = strict
        kwargs = {}
        if busy_timeout_ms is not None:
            kwargs["busy_timeout_ms"] = busy_timeout_ms
        if max_attempts is not None:
            kwargs["max_attempts"] = max_attempts
        self.db = Database(self.root, **kwargs)

        def create(conn):
            for statement in _SCHEMA_STATEMENTS:
                conn.execute(statement)

        self.db.write_txn(create)
        self.oplog = Oplog(self.db)

    # -- plumbing -------------------------------------------------------------

    def close(self) -> None:
        """Flush and close this process's connection (idempotent)."""
        self.db.close()

    def _row(self, kind: str, fingerprint: str):
        return self.db.read().execute(
            "SELECT body FROM entries WHERE kind = ? AND fingerprint = ?",
            (kind, fingerprint),
        ).fetchone()

    def _put(self, kind: str, fingerprint: str, body: bytes) -> Path:
        telemetry.count("cache.write", kind=kind)
        now = time.time()

        def txn(conn):
            conn.execute(
                "INSERT INTO entries (kind, fingerprint, schema, body,"
                " created_at) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (kind, fingerprint) DO UPDATE SET"
                " schema = excluded.schema, body = excluded.body,"
                " created_at = excluded.created_at",
                (kind, fingerprint, SCHEMA_VERSION, body, now),
            )

        self.db.write_txn(txn)
        return self.root

    def _quarantine_row(self, kind: str, fingerprint: str, reason: str) -> None:
        telemetry.count("cache.quarantine", kind=kind)
        now = time.time()

        def txn(conn):
            row = conn.execute(
                "SELECT body FROM entries WHERE kind = ? AND fingerprint = ?",
                (kind, fingerprint),
            ).fetchone()
            body = row["body"] if row is not None else None
            conn.execute(
                "INSERT OR REPLACE INTO quarantine (kind, fingerprint,"
                " reason, body, quarantined_at) VALUES (?, ?, ?, ?, ?)",
                (kind, fingerprint, reason, body, now),
            )
            conn.execute(
                "DELETE FROM entries WHERE kind = ? AND fingerprint = ?",
                (kind, fingerprint),
            )

        self.db.write_txn(txn)

    def _corrupt_row(self, kind: str, fingerprint: str, reason: str):
        """Quarantine a corrupt row; raise in strict mode (else a miss)."""
        telemetry.event(
            "cache.corrupt", kind=kind, entry=fingerprint, reason=reason,
        )
        self._quarantine_row(kind, fingerprint, reason)
        if self.strict:
            from repro.errors import CacheCorruptionError

            raise CacheCorruptionError(
                f"{self.root}:{kind}/{fingerprint}: {reason}"
            )
        return None

    @staticmethod
    def _decode_json(data: bytes, decoder):
        try:
            payload = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, "unparseable JSON"
        return decoder(payload)

    def _decode(self, kind: str, data: bytes):
        if kind == "results":
            return self._decode_json(data, decode_result)
        if kind == "verdicts":
            return self._decode_json(data, decode_verdict)
        if kind == "traces":
            return decode_trace(data)
        if kind == "hitmasks":
            return decode_hitmask(data)
        raise StoreError(f"unknown entry kind {kind!r}")

    def _get(self, kind: str, fingerprint: str):
        row = self._row(kind, fingerprint)
        if row is None:
            self._lookup(kind, hit=False)
            return None
        value, reason = self._decode(kind, row["body"])
        if reason is not None:
            self._lookup(kind, hit=False)
            return self._corrupt_row(kind, fingerprint, reason)
        self._lookup(kind, hit=value is not None)
        return value

    # -- the cache interface --------------------------------------------------

    def get_result(self, fingerprint: str) -> RunResult | None:
        """Load a cached run result (or None); quarantines corruption."""
        return self._get("results", fingerprint)

    def put_result(self, fingerprint: str, result: RunResult) -> Path:
        """Persist a run result in one transaction; returns the db path."""
        payload = encode_result(result)
        return self._put(
            "results", fingerprint, json.dumps(payload, indent=1).encode()
        )

    def get_trace(self, fingerprint: str) -> Trace | None:
        """Load a cached generated trace (or None); quarantines corruption."""
        return self._get("traces", fingerprint)

    def put_trace(self, fingerprint: str, trace: Trace) -> Path:
        """Persist a generated trace; returns the db path."""
        return self._put("traces", fingerprint, encode_trace(trace))

    def get_hitmask(self, fingerprint: str) -> np.ndarray | None:
        """Load a cached LLC hit mask (or None); quarantines corruption."""
        return self._get("hitmasks", fingerprint)

    def put_hitmask(self, fingerprint: str, mask: np.ndarray) -> Path:
        """Persist an LLC hit mask; returns the db path."""
        return self._put("hitmasks", fingerprint, encode_hitmask(mask))

    def get_verdict(self, fingerprint: str) -> dict | None:
        """Load a cached guard-verdict payload (or None)."""
        return self._get("verdicts", fingerprint)

    def put_verdict(self, fingerprint: str, payload: dict) -> Path:
        """Persist a guard-verdict payload; returns the db path."""
        envelope = encode_verdict(payload)
        return self._put(
            "verdicts", fingerprint, json.dumps(envelope, indent=1).encode()
        )

    # -- census and maintenance -----------------------------------------------

    def fingerprints(self, kind: str) -> list[str]:
        """Every stored fingerprint of *kind*, sorted (SQL census helper)."""
        rows = self.db.read().execute(
            "SELECT fingerprint FROM entries WHERE kind = ?"
            " ORDER BY fingerprint", (kind,),
        ).fetchall()
        return [row["fingerprint"] for row in rows]

    def stats(self) -> CacheStats:
        """Entry counts, byte totals and quarantine census (current schema)."""
        conn = self.db.read()
        entries = {kind: 0 for kind in _KINDS}
        bytes_ = {kind: 0 for kind in _KINDS}
        quarantined = {kind: 0 for kind in _KINDS}
        for row in conn.execute(
            "SELECT kind, COUNT(*) AS n, COALESCE(SUM(LENGTH(body)), 0)"
            " AS total FROM entries WHERE schema = ? GROUP BY kind",
            (SCHEMA_VERSION,),
        ):
            if row["kind"] in entries:
                entries[row["kind"]] = row["n"]
                bytes_[row["kind"]] = row["total"]
        for row in conn.execute(
            "SELECT kind, COUNT(*) AS n FROM quarantine GROUP BY kind"
        ):
            if row["kind"] in quarantined:
                quarantined[row["kind"]] = row["n"]
        return CacheStats(entries, bytes_, quarantined)

    def verify(self, repair: bool = True) -> CacheVerifyReport:
        """Walk every entry and validate its checksum.

        With ``repair=True`` (default) corrupt rows move to the
        quarantine table so subsequent runs recompute them; with
        ``repair=False`` the walk only reports.
        """
        checked = {kind: 0 for kind in _KINDS}
        corrupt: dict[str, tuple[str, ...]] = {}
        for kind in _KINDS:
            bad = []
            rows = self.db.read().execute(
                "SELECT fingerprint, body FROM entries WHERE kind = ?"
                " ORDER BY fingerprint", (kind,),
            ).fetchall()
            checked[kind] = len(rows)
            for row in rows:
                _, reason = self._decode(kind, row["body"])
                if reason is not None:
                    bad.append(row["fingerprint"])
                    if repair:
                        self._quarantine_row(kind, row["fingerprint"], reason)
            corrupt[kind] = tuple(bad)
        return CacheVerifyReport(checked=checked, corrupt=corrupt)

    def clear(self) -> int:
        """Delete every cached entry (the oplog is history and stays).

        Returns the number of entries removed.
        """
        def txn(conn):
            n = conn.execute("SELECT COUNT(*) AS n FROM entries").fetchone()["n"]
            conn.execute("DELETE FROM entries")
            conn.execute("DELETE FROM quarantine")
            return n

        return self.db.write_txn(txn)

    def integrity_check(self) -> str:
        """SQLite's own structural verdict (``ok`` when sound)."""
        return self.db.integrity_check()


def ensure_store(store: "SQLiteStore | str | Path | None") -> SQLiteStore | None:
    """Coerce a store argument: pass through, build from a path, or None."""
    if store is None or isinstance(store, SQLiteStore):
        return store
    return SQLiteStore(store)
