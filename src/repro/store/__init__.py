"""Durable experiment store: SQLite cache backend, oplog, sweep journal.

The pipeline's durability layer (``docs/STORE.md``):

- :mod:`repro.store.db` — WAL-mode connections, single-writer
  transactions, busy-timeout + bounded-backoff lock retry;
- :mod:`repro.store.store` — :class:`SQLiteStore`, the durable drop-in
  for the v2 file-tree :class:`~repro.runner.cache.ResultCache`
  (results, traces, hit masks, verdicts, quarantine — one queryable
  file, torn-write-proof by transaction);
- :mod:`repro.store.oplog` — the append-only event log sweeps and the
  guard service journal into;
- :mod:`repro.store.journal` — per-experiment sweep checkpoints that
  make ``mnemo sweep --resume RUN_ID`` skip finished work after a
  coordinator kill;
- :mod:`repro.store.migrate` — one-shot, read-back-verified migration
  from a v2 file tree (``mnemo cache migrate``).
"""

from repro.store.db import DEFAULT_BUSY_TIMEOUT_MS, Database
from repro.store.journal import SweepJournal
from repro.store.migrate import MigrationReport, migrate_cache
from repro.store.oplog import (
    KIND_CONFIG_RELOADED,
    KIND_REQUEST_SERVED,
    KIND_TOKEN_REGISTERED,
    KIND_TOKEN_REVOKED,
    SERVICE_REQUEST_KINDS,
    Oplog,
    OplogEntry,
)
from repro.store.store import DEFAULT_STORE_PATH, SQLiteStore, ensure_store

__all__ = [
    "DEFAULT_BUSY_TIMEOUT_MS",
    "DEFAULT_STORE_PATH",
    "Database",
    "KIND_CONFIG_RELOADED",
    "KIND_REQUEST_SERVED",
    "KIND_TOKEN_REGISTERED",
    "KIND_TOKEN_REVOKED",
    "MigrationReport",
    "Oplog",
    "OplogEntry",
    "SERVICE_REQUEST_KINDS",
    "SQLiteStore",
    "SweepJournal",
    "ensure_store",
    "migrate_cache",
]
