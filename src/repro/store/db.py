"""SQLite connection plumbing: WAL mode, busy timeout, bounded retry.

One :class:`Database` wraps one SQLite file and hands out connections
that are safe for this codebase's process model:

- **WAL journal mode** so readers never block the single writer and a
  SIGKILL mid-transaction leaves a consistent database (the WAL is
  rolled back or checkpointed on the next open, never half-applied);
- **per-(pid, thread) connections** — pool workers fork from the
  coordinator, and a forked child must never reuse the parent's
  connection object, so :meth:`connection` reopens lazily whenever the
  pid or thread changes;
- **``busy_timeout``** makes SQLite itself wait out short lock
  contention, and :meth:`Database.write_txn` adds a bounded exponential-backoff
  retry loop (with deterministic jitter, matching the runner's
  :class:`~repro.runner.grid.RetryPolicy` idiom) around ``BEGIN
  IMMEDIATE`` transactions for the pathological cases — two sweeps
  hammering one store on a slow volume — before giving up with a
  :class:`~repro.errors.StoreError`.

Writes always run inside a single ``BEGIN IMMEDIATE`` transaction:
SQLite serialises writers, so every row is either fully present or
absent — the property the crash drills in ``tests/store`` assert.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from pathlib import Path

from repro import telemetry
from repro.errors import StoreError
from repro.rng import derive_seed

#: Default SQLite busy timeout (milliseconds) before a lock attempt
#: surfaces as ``OperationalError: database is locked``.
DEFAULT_BUSY_TIMEOUT_MS = 5_000

#: ``OperationalError`` messages that mean transient lock contention.
_LOCKED_MARKERS = ("database is locked", "database is busy")


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    msg = str(exc).lower()
    return any(marker in msg for marker in _LOCKED_MARKERS)


class Database:
    """One SQLite file with WAL durability and contention-tolerant writes.

    Parameters
    ----------
    path:
        Database file (parent directories are created on demand).
    busy_timeout_ms:
        How long SQLite itself waits on a locked database before
        raising; the retry loop below sits on top of this.
    max_attempts:
        Write-transaction attempts before a lock surfaces as a
        :class:`~repro.errors.StoreError` (1 = no retries).
    backoff_base_s / backoff_factor:
        Exponential backoff between attempts, jittered
        deterministically from (path, attempt).
    """

    def __init__(
        self,
        path: str | Path,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
        max_attempts: int = 6,
        backoff_base_s: float = 0.01,
        backoff_factor: float = 2.0,
    ):
        self.path = Path(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_factor = float(backoff_factor)
        self._local = threading.local()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- connections ----------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_ms / 1000.0,
                isolation_level=None,  # explicit BEGIN/COMMIT only
            )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open store {self.path}: {exc}") from exc
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
        conn.execute("PRAGMA foreign_keys=ON")
        return conn

    def connection(self) -> sqlite3.Connection:
        """This (pid, thread)'s connection, (re)opened as needed.

        A connection created before a ``fork`` must not be used in the
        child — SQLite file locks and the connection's internal state
        are per-process — so the memo is keyed on the current pid.
        """
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != pid:
            self._local.conn = self._open()
            self._local.pid = pid
        return self._local.conn

    def close(self) -> None:
        """Close this (pid, thread)'s connection, if one is open."""
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    # -- transactions ---------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        u = derive_seed(None, f"{self.path}/lock/{attempt}") / 2.0**32
        return base * (1.0 + 0.25 * u)

    def _rollback(self, conn: sqlite3.Connection) -> None:
        try:
            conn.execute("ROLLBACK")
        except sqlite3.OperationalError:  # pragma: no cover - no txn open
            pass

    def write_txn(self, fn):
        """Run ``fn(conn)`` in a single-writer transaction, retrying locks.

        ``BEGIN IMMEDIATE`` takes the write lock up front, so the whole
        body either commits atomically or rolls back; lock contention
        that outlasts ``busy_timeout`` is retried with exponential
        backoff up to ``max_attempts`` times, then raised as
        :class:`~repro.errors.StoreError`.  Returns ``fn``'s result.
        """
        conn = self.connection()
        last: sqlite3.OperationalError | None = None
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                telemetry.count("store.lock_retry")
                time.sleep(self._backoff_s(attempt - 1))
            try:
                conn.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc):
                    raise
                last = exc
                continue
            try:
                out = fn(conn)
                conn.execute("COMMIT")
                return out
            except sqlite3.OperationalError as exc:
                self._rollback(conn)
                if not _is_locked(exc):
                    raise
                last = exc
            except BaseException:
                self._rollback(conn)
                raise
        raise StoreError(
            f"store {self.path} stayed locked through "
            f"{self.max_attempts} attempts: {last}"
        )

    def read(self) -> sqlite3.Connection:
        """The connection for plain reads (WAL readers never block)."""
        return self.connection()

    def integrity_check(self) -> str:
        """Run ``PRAGMA integrity_check``; returns SQLite's verdict."""
        row = self.read().execute("PRAGMA integrity_check").fetchone()
        return str(row[0]) if row is not None else "missing"
