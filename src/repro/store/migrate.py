"""One-shot migration from the v2 file-tree cache into a SQLite store.

``mnemo cache migrate`` walks every current-schema entry of a
:class:`~repro.runner.cache.ResultCache` tree, inserts it into a
:class:`~repro.store.SQLiteStore`, and — because both backends persist
the *same* encoded envelopes (:mod:`repro.runner.cache` codecs) —
verifies bit-identical read-back per entry before counting it
migrated:

- results: decoded :class:`~repro.ycsb.client.RunResult` equality
  (dataclass ``==`` over every measured field);
- traces / hit masks: exact array equality plus name;
- verdicts: canonical-JSON payload equality.

Corrupt source entries are *skipped and counted*, never copied — the
migration is also a free integrity walk.  The source tree is left
untouched; delete it once the report says ``ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StoreError
from repro.runner.cache import _KINDS, ResultCache
from repro.store.store import SQLiteStore
from repro.ycsb.workload import Trace


def _identical(kind: str, a, b) -> bool:
    """Bit-level equality judgement per entry kind."""
    if a is None or b is None:
        return False
    if kind == "traces":
        assert isinstance(a, Trace) and isinstance(b, Trace)
        return (
            a.name == b.name
            and np.array_equal(a.keys, b.keys)
            and np.array_equal(a.is_read, b.is_read)
            and np.array_equal(a.record_sizes, b.record_sizes)
        )
    if kind == "hitmasks":
        return np.array_equal(a, b)
    return a == b  # results (dataclass ==) and verdicts (dict ==)


@dataclass(frozen=True)
class MigrationReport:
    """What one cache -> store migration did, per entry kind."""

    migrated: dict[str, int] = field(default_factory=dict)
    skipped: dict[str, tuple[str, ...]] = field(default_factory=dict)
    mismatched: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def total_migrated(self) -> int:
        """Entries copied and verified across all kinds."""
        return sum(self.migrated.values())

    @property
    def total_skipped(self) -> int:
        """Corrupt source entries left behind."""
        return sum(len(v) for v in self.skipped.values())

    @property
    def ok(self) -> bool:
        """True when every migrated entry read back bit-identically."""
        return not any(self.mismatched.values())

    def lines(self) -> list[str]:
        """Human-readable migration summary."""
        out = []
        for kind in _KINDS:
            n = self.migrated.get(kind, 0)
            n_skip = len(self.skipped.get(kind, ()))
            n_bad = len(self.mismatched.get(kind, ()))
            status = "ok" if n_bad == 0 else f"{n_bad} READ-BACK MISMATCH"
            skip = f", {n_skip} corrupt skipped" if n_skip else ""
            out.append(f"{kind:<10} {n:>6} migrated  {status}{skip}")
        tail = (
            "all entries verified bit-identical"
            if self.ok else "MIGRATION FAILED VERIFICATION"
        )
        out.append(f"{'total':<10} {self.total_migrated:>6} migrated  {tail}")
        return out


_LOADERS = {
    "results": ("_load_result_file", "put_result", "get_result"),
    "traces": ("_load_trace_file", "put_trace", "get_trace"),
    "hitmasks": ("_load_hitmask_file", "put_hitmask", "get_hitmask"),
    "verdicts": ("_load_verdict_file", "put_verdict", "get_verdict"),
}


def migrate_cache(
    src: ResultCache, dst: SQLiteStore, verify: bool = True,
) -> MigrationReport:
    """Copy every valid v2 file entry into *dst* with read-back checks.

    Parameters
    ----------
    src:
        The v2 file-tree cache to drain (left untouched).
    dst:
        The destination store.
    verify:
        Read each migrated entry back from the store and require
        bit-identity (default True; the report's :attr:`~MigrationReport.ok`
        is only meaningful with verification on).
    """
    if isinstance(src, SQLiteStore):
        raise StoreError(
            "migration source must be a v2 file-tree cache, got a SQLite store"
        )
    migrated: dict[str, int] = {}
    skipped: dict[str, list[str]] = {}
    mismatched: dict[str, list[str]] = {}
    for kind in _KINDS:
        load_name, put_name, get_name = _LOADERS[kind]
        loader = getattr(src, load_name)
        put = getattr(dst, put_name)
        get = getattr(dst, get_name)
        migrated[kind] = 0
        skipped[kind] = []
        mismatched[kind] = []
        for path in src._entries(kind):
            fingerprint = path.stem
            value, reason = loader(path)
            if reason is not None or value is None:
                # corrupt or stale-schema: never copied, only counted
                skipped[kind].append(fingerprint)
                continue
            put(fingerprint, value)
            if verify:
                back = get(fingerprint)
                if not _identical(kind, value, back):
                    mismatched[kind].append(fingerprint)
                    continue
            migrated[kind] += 1
    return MigrationReport(
        migrated=migrated,
        skipped={k: tuple(v) for k, v in skipped.items()},
        mismatched={k: tuple(v) for k, v in mismatched.items()},
    )
