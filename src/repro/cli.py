"""Command-line interface.

The tool the paper describes is operated by infrastructure people, so
the reproduction ships a CLI mirroring the paper's interface
(Section IV, "Interfacing with Mnemo"):

    python -m repro workloads
    python -m repro profile --workload trending --engine redis \
        --slo 0.10 --csv curve.csv --plot
    python -m repro profile --requests req.csv --dataset data.csv
    python -m repro compare --workload trending
    python -m repro pricing
    python -m repro sweep --workloads trending,timeline --workers 4
    python -m repro sweep --store mnemo.db --run-id nightly
    python -m repro sweep --store mnemo.db --resume nightly
    python -m repro cache stats
    python -m repro cache migrate --dir .mnemo-cache --store mnemo.db
    python -m repro guard --workload trending --live-rotate 500
    python -m repro serve --workload trending --interval 60 \
        --store mnemo.db

Exit code 0 on success; usage and configuration errors print one clean
line to stderr and exit 2.  The ``guard`` subcommand additionally uses
1 (warnings) and 3 (action needed) so CI and cron jobs can react.
``sweep`` and ``serve`` install SIGTERM/SIGINT handlers so a kill
releases shared memory, pools and store handles on the way out and
exits ``128 + signum``.
"""

from __future__ import annotations

import argparse
import logging
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence

from repro import telemetry
from repro.analysis.asciiplot import render_estimate
from repro.core import Mnemo, MnemoT, WorkloadDescriptor
from repro.errors import ConfigurationError, ReproError, UsageError
from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.ycsb import (
    TABLE_III_WORKLOADS,
    YCSBClient,
    downsample,
    generate_trace,
    workload_by_name,
)

ENGINES = {
    "redis": RedisLike,
    "memcached": MemcachedLike,
    "dynamodb": DynamoLike,
}

#: CLI diagnostics go through here (``-v``/``-q`` set the level);
#: operator-facing reports and tables still ``print`` to stdout.
log = logging.getLogger("repro.cli")


def _configure_logging(verbose: int, quiet: bool) -> None:
    """Map ``-v``/``-q`` onto stdlib logging levels (stderr handler).

    Default WARNING keeps the happy path silent; ``-v`` shows INFO
    diagnostics, ``-vv`` DEBUG, ``--quiet`` errors only.  ``force``
    rebinds the handler so repeated in-process ``main()`` calls (tests)
    honour the latest flags.
    """
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )


def _check_range(
    name: str,
    value: float,
    lo: float | None = None,
    hi: float | None = None,
    lo_open: bool = False,
    hi_open: bool = False,
) -> float:
    """Validate a numeric CLI option against an interval.

    Raises :class:`~repro.errors.UsageError` naming the option and the
    offending value — so ``--split 1.5`` dies with a one-line message
    instead of a deep traceback (or, worse, silent nonsense downstream).
    """
    bad = value != value  # NaN never belongs in a fraction
    if lo is not None:
        bad = bad or (value <= lo if lo_open else value < lo)
    if hi is not None:
        bad = bad or (value >= hi if hi_open else value > hi)
    if bad:
        left = "(" if lo_open else "["
        right = ")" if hi_open else "]"
        lo_s = "-inf" if lo is None else f"{lo:g}"
        hi_s = "inf" if hi is None else f"{hi:g}"
        raise UsageError(
            f"{name} must be in {left}{lo_s}, {hi_s}{right}, got {value:g}"
        )
    return value


def _parse_faults_arg(text: str | None):
    """Parse ``--faults`` and convert DSL errors into clean usage errors.

    The fault DSL parser raises :class:`~repro.errors.ConfigurationError`
    with the offending token in the message; at the CLI boundary that
    becomes a :class:`~repro.errors.UsageError` tagged with the option
    name so the operator sees exactly which token to fix.
    """
    from repro.faults import parse_faults

    try:
        return parse_faults(text) if text else None
    except ConfigurationError as exc:
        raise UsageError(f"--faults: {exc}") from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mnemo: hybrid-memory capacity sizing consultant "
                    "(IPDPS-W 2019 reproduction)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="diagnostic logging (-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="errors only on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the built-in Table III workloads")

    prof = sub.add_parser("profile", help="profile a workload")
    prof.add_argument("--workload", help="built-in workload name")
    prof.add_argument("--requests", help="requests CSV (key,op)")
    prof.add_argument("--dataset", help="dataset CSV (key,size_bytes)")
    prof.add_argument("--engine", default="redis", choices=sorted(ENGINES))
    prof.add_argument("--mode", default="touch", choices=["touch", "weight"],
                      help="tiering order: touch = Mnemo, weight = MnemoT")
    prof.add_argument("--p", type=float, default=0.2,
                      help="SlowMem price factor (default 0.2)")
    prof.add_argument("--slo", type=float, default=0.10,
                      help="max slowdown vs FastMem-only (default 0.10)")
    prof.add_argument("--csv", help="write the 3-column estimate curve here")
    prof.add_argument("--plot", action="store_true",
                      help="render the estimate curve as ASCII art")
    prof.add_argument("--downsample", type=float, default=0.0, metavar="N",
                      help="profile a 1/N random sample of the workload")
    prof.add_argument("--repeats", type=int, default=3)
    prof.add_argument("--seed", type=int, default=None)
    prof.add_argument("--cache-dir", metavar="DIR",
                      help="memoize measurements in this result cache")
    prof.add_argument("--obs", metavar="PATH",
                      help="write a telemetry event log (JSONL) here; "
                           "inspect it with 'obs PATH'")

    comp = sub.add_parser("compare",
                          help="compare all engines on one workload")
    comp.add_argument("--workload", default="trending")
    comp.add_argument("--slo", type=float, default=0.10)

    sub.add_parser("pricing",
                   help="Figure 1: memory share of Memory-Optimized VM cost")

    drift = sub.add_parser(
        "drift", help="diagnose access-pattern drift (static-placement fit)"
    )
    drift.add_argument("--workload", required=True)
    drift.add_argument("--capacity", type=float, default=0.2,
                       help="FastMem budget as a dataset fraction")
    drift.add_argument("--windows", type=int, default=10)

    retier = sub.add_parser(
        "retier",
        help="estimate whether periodic re-tiering beats static placement",
    )
    retier.add_argument("--workload", required=True)
    retier.add_argument("--engine", default="redis", choices=sorted(ENGINES))
    retier.add_argument("--capacity", type=float, default=0.2)
    retier.add_argument("--windows", type=int, default=10)

    mt = sub.add_parser(
        "multitier",
        help="sweep a DRAM+NVM+Far three-tier system (Pareto + SLO choice)",
    )
    mt.add_argument("--workload", required=True)
    mt.add_argument("--slo", type=float, default=0.10)
    mt.add_argument("--grid", type=int, default=15,
                    help="capacity grid resolution per tier")

    sweep = sub.add_parser(
        "sweep",
        help="run a workload x engine x placement grid "
             "(parallel, cached, deterministic)",
    )
    sweep.add_argument("--workloads", default="trending",
                       help="comma-separated workload names, or 'all'")
    sweep.add_argument("--engines", default="redis",
                       help="comma-separated engine names, or 'all'")
    sweep.add_argument("--placements", default="fast,slow",
                       help="comma-separated placements "
                            "(fast, slow, split)")
    sweep.add_argument("--split", type=float, default=0.2,
                       help="FastMem payload fraction for 'split' cells")
    sweep.add_argument("--workers", type=int, default=1,
                       help="process count (1 = serial)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="memoize results in this cache directory")
    sweep.add_argument("--seed", type=int, default=None)
    sweep.add_argument("--faults", metavar="SPEC",
                       help="inject deterministic faults, e.g. "
                            "'spikes,ramp(floor=0.4),jitter' "
                            "(see docs/FAULTS.md)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-experiment timeout in seconds")
    sweep.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per experiment before giving up "
                            "(default 3)")
    sweep.add_argument("--plan", choices=["auto", "grouped", "cell"],
                       default="auto",
                       help="pooled dispatch plan: grouped placement "
                            "batches (default) or one task per grid cell")
    sweep.add_argument("--no-shm", action="store_true",
                       help="disable the shared-memory trace plane "
                            "(workers materialise traces themselves)")
    sweep.add_argument("--obs", metavar="PATH",
                       help="write a telemetry event log (JSONL) here; "
                            "inspect it with 'obs PATH'")
    sweep.add_argument("--store", metavar="DB",
                       help="memoize results in this durable SQLite "
                            "store instead of a cache directory")
    sweep.add_argument("--run-id", metavar="ID",
                       help="journal checkpoints to the store under "
                            "this run id (the sweep becomes resumable)")
    sweep.add_argument("--resume", metavar="RUN_ID",
                       help="resume a journaled run: skip checkpointed "
                            "experiments, load their results from the "
                            "store (requires --store)")

    cache = sub.add_parser("cache", help="inspect, verify, clear or "
                                         "migrate the result cache")
    cache.add_argument("action",
                       choices=["stats", "verify", "clear", "migrate"])
    cache.add_argument("--dir", dest="cache_dir", metavar="DIR",
                       help="cache directory or store file "
                            "(default .mnemo-cache)")
    cache.add_argument("--store", metavar="DB",
                       help="migrate: destination SQLite store "
                            "(default mnemo.db)")

    guard = sub.add_parser(
        "guard",
        help="validate a recommendation against the live workload "
             "(CI/cron guardrail; exit 0=clean, 1=warn, 3=act)",
    )
    guard.add_argument("--workload", required=True,
                       help="planning workload (built-in name)")
    guard.add_argument("--engine", default="redis", choices=sorted(ENGINES))
    guard.add_argument("--slo", type=float, default=0.10,
                       help="max slowdown vs FastMem-only (default 0.10)")
    guard.add_argument("--live-workload", metavar="NAME",
                       help="built-in workload standing in for the live "
                            "stream (default: the planning workload)")
    guard.add_argument("--live-rotate", type=int, default=0, metavar="K",
                       help="rotate the live trace's hot set by K keys "
                            "(synthesizes hot-set drift for drills)")
    guard.add_argument("--budget", type=float, default=10.0, metavar="PCT",
                       help="throughput/latency error budget in percent "
                            "(default 10)")
    guard.add_argument("--no-validate", action="store_true",
                       help="drift + margin checks only; skip the "
                            "simulator replay")
    guard.add_argument("--repeats", type=int, default=3)
    guard.add_argument("--seed", type=int, default=None)
    guard.add_argument("--downsample", type=float, default=0.0, metavar="N",
                       help="plan on a 1/N random sample of the workload")
    guard.add_argument("--cache-dir", metavar="DIR",
                       help="memoize measurements and verdicts in this "
                            "result cache")
    guard.add_argument("--obs", metavar="PATH",
                       help="write a telemetry event log (JSONL) here; "
                            "inspect it with 'obs PATH'")

    serve = sub.add_parser(
        "serve",
        help="run the guard loop as a supervised service "
             "(heartbeat file, control socket, crash-restart)",
    )
    serve.add_argument("--workload", default="trending",
                       help="planning workload (built-in name)")
    serve.add_argument("--engine", default="redis", choices=sorted(ENGINES))
    serve.add_argument("--slo", type=float, default=0.10,
                       help="max slowdown vs FastMem-only (default 0.10)")
    serve.add_argument("--interval", type=float, default=60.0, metavar="S",
                       help="seconds between guard ticks (default 60)")
    serve.add_argument("--validate-every", type=int, default=1, metavar="N",
                       help="full simulator replay every Nth tick "
                            "(0 = drift + margin only; default 1)")
    serve.add_argument("--repeats", type=int, default=3)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--downsample", type=float, default=0.0, metavar="N",
                       help="plan on a 1/N random sample of the workload")
    serve.add_argument("--store", metavar="DB",
                       help="journal service events (and memoize "
                            "measurements) in this SQLite store")
    serve.add_argument("--rundir", default=None, metavar="DIR",
                       help="heartbeat + control socket directory "
                            "(default .mnemo-serve)")
    serve.add_argument("--run-id", default="serve", metavar="ID",
                       help="oplog run id for service events")
    serve.add_argument("--max-ticks", type=int, default=None, metavar="N",
                       help="stop after N ticks (drills and tests)")
    serve.add_argument("--no-supervise", action="store_true",
                       help="run the service in this process, without "
                            "the crash-restart supervisor")
    serve.add_argument("--max-restarts", type=int, default=5,
                       help="crashes tolerated before giving up "
                            "(default 5)")
    serve.add_argument("--backoff-base", type=float, default=0.5,
                       metavar="S",
                       help="first restart backoff in seconds; doubles "
                            "per restart (default 0.5)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="request-plane worker threads (default 2)")
    serve.add_argument("--queue-depth", type=int, default=8, metavar="N",
                       help="admission-queue capacity before requests "
                            "are shed (default 8)")
    serve.add_argument("--control", metavar="OP",
                       choices=["ping", "status", "metrics", "shutdown",
                                "size", "validate", "drift", "reload",
                                "register", "revoke"],
                       help="instead of serving, send OP to the service "
                            "listening under --rundir and print its reply")
    serve.add_argument("--token", default=None, metavar="TOKEN",
                       help="auth token attached to --control requests")
    serve.add_argument("--new-token", default=None, metavar="TOKEN",
                       help="token to register (--control register)")
    serve.add_argument("--revoke-token", default=None, metavar="TOKEN",
                       help="token to revoke (--control revoke)")
    serve.add_argument("--deadline", type=float, default=None, metavar="S",
                       help="per-request deadline for --control advice "
                            "ops (server default when omitted)")
    serve.add_argument("--set", action="append", default=[], metavar="K=V",
                       dest="set_fields",
                       help="request field for --control size/validate/"
                            "reload (repeatable), e.g. --set slo=0.15")
    serve.add_argument("--drift-keys", default=None, metavar="FILE",
                       help="JSON file with the key-id sample for "
                            "--control drift (a list, or an object with "
                            "'keys' and optional 'sizes')")

    obs = sub.add_parser(
        "obs",
        help="render a telemetry event log: span tree, slow spans, "
             "cache hit rate, kernel path mix",
    )
    obs.add_argument("path", help="JSONL event log written via --obs")
    obs.add_argument("--top", type=int, default=10,
                     help="slow spans to list (default 10)")
    obs.add_argument("--prom", action="store_true",
                     help="emit the final metrics in Prometheus text "
                          "format instead of the report")
    return parser


def _load_workload(args) -> WorkloadDescriptor:
    if args.workload and (args.requests or args.dataset):
        raise UsageError("give either --workload or --requests/--dataset")
    if args.workload:
        trace = generate_trace(workload_by_name(args.workload))
    elif args.requests and args.dataset:
        return WorkloadDescriptor.from_csv(args.requests, args.dataset)
    else:
        raise UsageError("need --workload or both --requests and --dataset")
    _check_range("--downsample", args.downsample, lo=0.0)
    if args.downsample and args.downsample > 1:
        trace = downsample(trace, factor=args.downsample, seed=args.seed)
    return WorkloadDescriptor.from_trace(trace)


def _cmd_workloads(_args) -> int:
    print(f"{'name':<18} {'distribution':<18} {'R:W':>6} {'sizes':<14} "
          f"{'keys':>7} {'requests':>9}")
    for w in TABLE_III_WORKLOADS:
        rw = f"{int(w.read_fraction * 100)}:{int((1 - w.read_fraction) * 100)}"
        print(f"{w.name:<18} {w.distribution.name:<18} {rw:>6} "
              f"{w.size_model.name:<14} {w.n_keys:>7,} {w.n_requests:>9,}")
    return 0


def _cmd_profile(args) -> int:
    _check_range("--slo", args.slo, lo=0.0, hi=1.0, hi_open=True)
    _check_range("--p", args.p, lo=0.0, lo_open=True)
    descriptor = _load_workload(args)
    log.info("profiling %r on %s (mode=%s, cache=%s)",
             descriptor.name, args.engine, args.mode,
             args.cache_dir or "off")
    cls = MnemoT if args.mode == "weight" else Mnemo
    mnemo = cls(
        engine_factory=ENGINES[args.engine],
        client=YCSBClient(repeats=args.repeats, seed=args.seed),
        p=args.p,
        cache=args.cache_dir,
    )
    report = mnemo.profile(descriptor)
    print(report.summary())
    choice = report.choose(args.slo)
    print(
        f"\nat the {args.slo:.0%} slowdown SLO: place "
        f"{choice.n_fast_keys:,} keys ({choice.fast_bytes / 1e6:.0f} MB, "
        f"{choice.capacity_ratio:.0%} of data) in FastMem -> "
        f"{choice.savings_percent:.0f}% memory-cost saving"
    )
    if args.csv:
        path = report.write_csv(args.csv)
        print(f"wrote estimate curve: {path}")
    if args.plot:
        print()
        print(render_estimate(report.curve))
    return 0


def _cmd_compare(args) -> int:
    _check_range("--slo", args.slo, lo=0.0, hi=1.0, hi_open=True)
    trace = generate_trace(workload_by_name(args.workload))
    print(f"{'engine':<12} {'Fast ops/s':>12} {'Slow ops/s':>12} "
          f"{'gap':>7} {'cost @SLO':>10}")
    for name, factory in ENGINES.items():
        report = Mnemo(engine_factory=factory).profile(trace)
        b = report.baselines
        choice = report.choose(args.slo)
        print(f"{name:<12} {b.fast.throughput_ops_s:>12,.0f} "
              f"{b.slow.throughput_ops_s:>12,.0f} "
              f"{b.throughput_gap:>6.2f}x {choice.cost_factor:>9.0%}")
    return 0


def _cmd_pricing(_args) -> int:
    from repro.pricing import (
        catalog_for,
        memory_fraction_summary,
    )

    summary = memory_fraction_summary()
    print(f"{'family':<26} {'instance':<20} {'mem share':>10}")
    for family, fractions in summary.items():
        for inst in catalog_for(family):
            print(f"{family:<26} {inst.name:<20} "
                  f"{fractions[inst.name]:>9.1%}")
    return 0


def _cmd_drift(args) -> int:
    from repro.core.drift import analyze_drift

    trace = generate_trace(workload_by_name(args.workload))
    report = analyze_drift(trace, capacity_fraction=args.capacity,
                           n_windows=args.windows)
    print(f"workload : {report.workload}")
    print(f"drift    : {report.drift:.2f}")
    print(f"regret   : {report.regret.regret:.0%} at a "
          f"{args.capacity:.0%} FastMem budget "
          f"(static {report.regret.static_hit_fraction:.0%} vs oracle "
          f"{report.regret.oracle_hit_fraction:.0%} fast-served)")
    print(report.recommendation)
    return 0


def _cmd_retier(args) -> int:
    from repro.core import Mnemo
    from repro.core.dynamic import simulate_periodic_retiering

    trace = generate_trace(workload_by_name(args.workload))
    report = Mnemo(engine_factory=ENGINES[args.engine]).profile(trace)
    out = simulate_periodic_retiering(
        trace, report.baselines,
        capacity_fraction=args.capacity, n_windows=args.windows,
    )
    print(f"workload        : {out.workload} ({args.engine})")
    print(f"static          : {out.static_throughput_ops_s:,.0f} ops/s")
    print(f"retiered        : {out.dynamic_throughput_ops_s:,.0f} ops/s "
          f"({out.migrated_bytes / 1e6:,.0f} MB migrated)")
    print(f"net speedup     : {out.speedup:.3f}x")
    print("verdict         : "
          + ("periodic re-tiering pays for its copies"
             if out.worth_migrating
             else "stay static (the paper's scope is the right call)"))
    return 0


def _cmd_multitier(args) -> int:
    import numpy as np

    from repro.kvstore.profiles import profile_for
    from repro.multitier import MultiTierAdvisor, TieredMemorySystem

    trace = generate_trace(workload_by_name(args.workload))
    total = int(trace.record_sizes.sum())
    advisor = MultiTierAdvisor(
        TieredMemorySystem.dram_nvm_far(), profile_for("redis")
    )
    baselines = advisor.measure(trace)
    fracs = np.linspace(0.01, 1.0, args.grid)
    grid = [
        [max(1, int(f0 * total)), max(1, int(f1 * total)), None]
        for f0 in fracs for f1 in fracs if f0 + f1 <= 1.0
    ]
    plans = advisor.sweep(trace, baselines, grid)
    frontier = advisor.pareto(plans)
    choice = advisor.cheapest_within_slo(plans, baselines, args.slo)

    print(f"{'cost':>7} {'est ops/s':>11} {'DRAM':>6} {'NVM':>6} {'Far':>6}")
    step = max(1, len(frontier) // 12)
    for plan in frontier[::step]:
        d, nv, far = plan.tier_shares()
        print(f"{plan.cost_factor:>6.0%} "
              f"{plan.est_throughput_ops_s:>11,.0f} "
              f"{d:>6.0%} {nv:>6.0%} {far:>6.0%}")
    d, nv, far = choice.tier_shares()
    print(f"\nchoice @{args.slo:.0%} SLO: cost {choice.cost_factor:.0%} "
          f"(DRAM {d:.0%} / NVM {nv:.0%} / Far {far:.0%})")
    return 0


def _cmd_sweep(args) -> int:
    from repro.runner import ClientConfig, ExperimentRunner, RetryPolicy

    _check_range("--split", args.split, lo=0.0, hi=1.0)

    def pick(raw: str, universe: list[str], what: str) -> list[str]:
        if raw == "all":
            return universe
        names = [n.strip() for n in raw.split(",") if n.strip()]
        for n in names:
            if n not in universe:
                raise UsageError(
                    f"unknown {what} {n!r}; choose from {universe}"
                )
        return names

    workload_names = pick(
        args.workloads, [w.name for w in TABLE_III_WORKLOADS], "workload"
    )
    engines = pick(args.engines, sorted(ENGINES), "engine")
    placements = pick(args.placements, ["fast", "slow", "split"], "placement")

    if args.store and args.cache_dir:
        raise UsageError("give either --store or --cache-dir, not both")
    if args.run_id and args.resume:
        raise UsageError("give either --run-id or --resume, not both")
    run_id = args.resume or args.run_id
    journal = None
    cache = args.cache_dir
    if args.store:
        from repro.store import SQLiteStore, SweepJournal

        cache = SQLiteStore(args.store)
        if run_id:
            journal = SweepJournal(cache, run_id)
            if args.resume and not journal.started():
                raise UsageError(
                    f"--resume: no journaled run {args.resume!r} in "
                    f"{args.store} (known runs: "
                    f"{[r for r, _ in cache.oplog.runs()] or 'none'})"
                )
    elif run_id:
        raise UsageError("--run-id/--resume journal to a durable store; "
                         "add --store DB")

    faults = _parse_faults_arg(args.faults)
    runner = ExperimentRunner(
        cache=cache,
        client=ClientConfig(seed=args.seed, faults=faults),
        retry=RetryPolicy(
            max_attempts=args.max_attempts, timeout_s=args.timeout,
        ),
        plan=args.plan,
        use_shm=not args.no_shm,
    )
    specs = ExperimentRunner.grid(
        [workload_by_name(n) for n in workload_names],
        engines=engines,
        placements=placements,
        fast_fractions=(args.split,),
    )
    if faults is not None and faults.active:
        log.info("fault injection: %s", faults.describe())
    if journal is not None:
        log.info("journaling sweep under run id %r in %s",
                 run_id, args.store)
    log.info(
        "sweeping %d experiment(s) across %d worker(s)",
        len(specs), args.workers,
    )
    try:
        outcome = runner.sweep(specs, workers=args.workers, journal=journal)
    finally:
        runner.close()
        if args.store:
            cache.close()
    for line in outcome.summary().splitlines():
        log.info("%s", line)
    print(f"{'experiment':<40} {'ops/s':>12} {'avg read us':>12} "
          f"{'p99 us':>9}")
    for spec, res in zip(specs, outcome.results):
        if res is None:
            print(f"{spec.label:<40} {'FAILED':>12}")
            continue
        p99 = res.latency_percentiles_ns.get(99.0, float("nan")) / 1e3
        print(f"{spec.label:<40} {res.throughput_ops_s:>12,.0f} "
              f"{res.avg_read_ns / 1e3:>12.1f} {p99:>9.1f}")
    if not outcome.ok:
        print(f"\n{outcome.report.summary()}", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    from repro.runner import DEFAULT_CACHE_DIR
    from repro.runner.cache import ensure_cache

    if args.action == "migrate":
        from repro.runner.cache import ResultCache
        from repro.store import DEFAULT_STORE_PATH, SQLiteStore, migrate_cache

        src = ensure_cache(args.cache_dir or DEFAULT_CACHE_DIR)
        if isinstance(src, SQLiteStore):
            raise UsageError(
                f"--dir {src.root} is already a SQLite store; migrate "
                "reads a v2 file-tree cache"
            )
        dst = SQLiteStore(args.store or DEFAULT_STORE_PATH)
        try:
            report = migrate_cache(src, dst, verify=True)
        finally:
            dst.close()
        print(f"migrate: {src.root} -> {args.store or DEFAULT_STORE_PATH}")
        for line in report.lines():
            print(line)
        return 0 if report.ok else 1

    # stats/verify/clear work on either backend — ensure_cache detects
    # SQLite files (suffix or magic) and file trees alike
    cache = ensure_cache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached entries from {cache.root}")
        return 0
    if args.action == "verify":
        report = cache.verify()
        print(f"cache: {cache.root}")
        for line in report.lines():
            print(line)
        return 0 if report.ok else 1
    print(f"cache: {cache.root}")
    for line in cache.stats().lines():
        print(line)
    return 0


def _cmd_guard(args) -> int:
    from repro.guard import ErrorBudget
    from repro.guard.drift import rotate_hot_set
    from repro.ycsb import downsample as downsample_trace

    _check_range("--slo", args.slo, lo=0.0, hi=1.0, hi_open=True)
    _check_range("--budget", args.budget, lo=0.0, lo_open=True)
    _check_range("--downsample", args.downsample, lo=0.0)

    planning = generate_trace(workload_by_name(args.workload))
    if args.downsample and args.downsample > 1:
        planning = downsample_trace(
            planning, factor=args.downsample, seed=args.seed
        )
    if args.live_workload:
        live = generate_trace(workload_by_name(args.live_workload))
    else:
        live = planning
    if args.live_rotate:
        log.info("rotating the live hot set by %d keys", args.live_rotate)
        live = rotate_hot_set(live, args.live_rotate)

    mnemo = Mnemo(
        engine_factory=ENGINES[args.engine],
        client=YCSBClient(repeats=args.repeats, seed=args.seed),
        cache=args.cache_dir,
    )
    report = mnemo.profile(planning)
    loop = mnemo.guard_loop(
        budget=ErrorBudget(
            throughput_pct=args.budget, latency_pct=args.budget
        ),
    )
    outcome = loop.run(
        report,
        planning,
        live_trace=live,
        max_slowdown=args.slo,
        validate=not args.no_validate,
    )
    print(f"guard — workload {args.workload!r} on {args.engine} "
          f"(SLO {args.slo:.0%}, budget {args.budget:g}%)")
    for line in outcome.lines():
        print(f"  {line}")
    return outcome.exit_code


def _parse_set_fields(pairs) -> dict:
    """Parse repeated ``--set key=value`` flags into request fields.

    Values parse as JSON when they can (numbers, booleans, null) and
    fall back to plain strings, so ``--set slo=0.15`` sends a float
    while ``--set workload=news_feed`` sends a string.
    """
    import json as _json

    fields = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise UsageError(f"--set expects key=value, got {pair!r}")
        try:
            fields[key] = _json.loads(value)
        except _json.JSONDecodeError:
            fields[key] = value
    return fields


def _control_request(args) -> dict:
    """Assemble the request fields for one ``--control`` op."""
    import json as _json

    request = _parse_set_fields(args.set_fields)
    if args.deadline is not None:
        _check_range("--deadline", args.deadline, lo=0.0, lo_open=True)
        request["deadline_s"] = args.deadline
    if args.control == "register":
        if not args.new_token:
            raise UsageError("--control register needs --new-token")
        request["new_token"] = args.new_token
    if args.control == "revoke":
        if not args.revoke_token:
            raise UsageError("--control revoke needs --revoke-token")
        request["revoke_token"] = args.revoke_token
    if args.control == "drift":
        if not args.drift_keys:
            raise UsageError("--control drift needs --drift-keys FILE")
        try:
            doc = _json.loads(
                Path(args.drift_keys).read_text(encoding="utf-8")
            )
        except (OSError, _json.JSONDecodeError) as exc:
            raise UsageError(
                f"cannot read drift sample {args.drift_keys}: {exc}"
            ) from exc
        if isinstance(doc, dict):
            request["keys"] = doc.get("keys")
            if doc.get("sizes") is not None:
                request["sizes"] = doc["sizes"]
        else:
            request["keys"] = doc
    return request


def _cmd_serve(args) -> int:
    import json as _json

    from repro.errors import ServiceError
    from repro.service import (
        DEFAULT_RUNDIR,
        RestartPolicy,
        ServeConfig,
        ServiceClient,
        Supervisor,
        diagnose_unreachable,
        run_service,
    )
    from repro.service.serve import _service_child

    _check_range("--slo", args.slo, lo=0.0, hi=1.0, hi_open=True)
    _check_range("--interval", args.interval, lo=0.0, lo_open=True)
    _check_range("--downsample", args.downsample, lo=0.0)
    if args.validate_every < 0:
        raise UsageError(
            f"--validate-every must be >= 0, got {args.validate_every}"
        )
    if args.workload not in {w.name for w in TABLE_III_WORKLOADS}:
        raise UsageError(f"unknown workload {args.workload!r}")
    if args.workers < 1:
        raise UsageError(f"--workers must be >= 1, got {args.workers}")
    if args.queue_depth < 1:
        raise UsageError(
            f"--queue-depth must be >= 1, got {args.queue_depth}"
        )

    config = ServeConfig(
        workload=args.workload,
        engine=args.engine,
        slo=args.slo,
        interval_s=args.interval,
        validate_every=args.validate_every,
        repeats=args.repeats,
        seed=args.seed,
        downsample=args.downsample,
        store=args.store,
        rundir=args.rundir or DEFAULT_RUNDIR,
        run_id=args.run_id,
        workers=args.workers,
        queue_depth=args.queue_depth,
    )

    if args.control:
        client = ServiceClient(
            config.socket_path, token=args.token, label="cli",
        )
        try:
            reply = client.call(args.control, **_control_request(args))
        except ServiceError as exc:
            raise UsageError(diagnose_unreachable(
                config.socket_path, config.heartbeat_path, exc,
            )) from exc
        if args.control == "metrics" and reply.get("ok"):
            sys.stdout.write(reply.get("prometheus", ""))
        else:
            print(_json.dumps(reply, indent=1, sort_keys=True))
        return 0 if reply.get("ok") else 1

    if args.no_supervise:
        # in-process, with its own telemetry session so the socket's
        # `metrics` op has a live registry to export; TerminationSignal
        # unwinds through service cleanup and maps to 128 + signum
        log.info("serving (unsupervised): %s every %gs",
                 args.workload, args.interval)
        return run_service(config, max_ticks=args.max_ticks)

    policy = RestartPolicy(
        max_restarts=args.max_restarts,
        backoff_base_s=args.backoff_base,
    )
    supervisor = Supervisor(
        _service_child, args=(config, args.max_ticks), policy=policy,
        control_socket=config.socket_path,
    )
    # SIGTERM/SIGINT stop the supervisor (which SIGTERMs the child so
    # the service unwinds gracefully); record the signal for the exit
    # code convention
    import signal as _signal

    signaled: list[int] = []

    def _stop(signum, frame):  # pragma: no cover - exercised in drills
        signaled.append(signum)
        supervisor.stop()

    previous = {
        s: _signal.signal(s, _stop)
        for s in (_signal.SIGTERM, _signal.SIGINT)
    }
    log.info("serving (supervised, <=%d restarts): %s every %gs",
             args.max_restarts, args.workload, args.interval)
    try:
        code = supervisor.run()
    finally:
        for s, handler in previous.items():
            _signal.signal(s, handler)
    if signaled:
        return 128 + signaled[0]
    return code


def _cmd_obs(args) -> int:
    from repro.telemetry.render import RunView, render_run, to_prometheus

    if args.top < 1:
        raise UsageError(f"--top must be >= 1, got {args.top}")
    try:
        view = RunView.load(args.path)
    except OSError as exc:
        raise UsageError(f"cannot read {args.path}: {exc}") from exc
    for problem in view.problems:
        log.warning("%s", problem)
    if args.prom:
        sys.stdout.write(to_prometheus(view))
        return 0
    print(render_run(view, top=args.top))
    return 0


_COMMANDS = {
    "workloads": _cmd_workloads,
    "profile": _cmd_profile,
    "compare": _cmd_compare,
    "pricing": _cmd_pricing,
    "drift": _cmd_drift,
    "retier": _cmd_retier,
    "multitier": _cmd_multitier,
    "sweep": _cmd_sweep,
    "cache": _cmd_cache,
    "guard": _cmd_guard,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
}

#: Long-running commands that own releasable resources (a warm worker
#: pool, shared-memory trace segments, an open store): SIGTERM/SIGINT
#: must unwind their ``finally`` blocks, not kill the process mid-write.
_GRACEFUL_COMMANDS = frozenset({"sweep", "serve"})


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Conventions (documented in ``docs/GUARD.md``): 0 success, 2 for any
    usage or configuration error (printed as one clean ``error:`` line,
    never a traceback), and for ``guard`` additionally 1 = warnings and
    3 = action needed.
    """
    from repro.service.signals import TerminationSignal, handle_termination

    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    graceful = (
        handle_termination() if args.command in _GRACEFUL_COMMANDS
        else nullcontext()
    )
    try:
        with graceful:
            sink = getattr(args, "obs", None)
            if sink and args.command != "obs":
                with telemetry.session(sink=sink) as tel:
                    tel.run_attrs["command"] = args.command
                    code = _COMMANDS[args.command](args)
                log.info("telemetry written: %s", sink)
                return code
            return _COMMANDS[args.command](args)
    except TerminationSignal as sig:
        log.info("terminated by signal %d; resources released", sig.signum)
        return sig.exit_code
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
